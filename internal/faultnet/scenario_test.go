package faultnet

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestParseValidateRoundtrip(t *testing.T) {
	src := `{
		"name": "x", "seed": 9, "epochs": 8,
		"drop": 0.1, "delay": 0.5, "delay_ms": 3, "delay_jitter_ms": 7,
		"duplicate": 0.2, "reorder": 0.05,
		"partitions": [{"from": 2, "until": 4, "groups": [[0,1],[2,3]]}],
		"churn": [{"node": 3, "leave": 2, "rejoin": 5}],
		"grace_rounds": 2, "rejoin": true, "timeout_ms": 500
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || s.Drop != 0.1 || len(s.Partitions) != 1 || len(s.Churn) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Timeout() != 500*time.Millisecond {
		t.Fatalf("timeout %v", s.Timeout())
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2, s) {
		t.Fatalf("roundtrip drifted:\n%+v\n%+v", s2, s)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		`{"drop": 1.5}`,
		`{"delay_ms": -1}`,
		`{"partitions": [{"from": 3, "until": 3, "groups": [[0],[1]]}]}`,
		`{"partitions": [{"from": 0, "until": 2, "groups": [[0,1]]}]}`,
		`{"partitions": [{"from": 0, "until": 2, "groups": [[0,1],[1,2]]}]}`,
		`{"churn": [{"node": -1, "leave": 0}]}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("spec accepted: %s", src)
		}
	}
}

// TestScheduleDeterministic pins the core contract: every decision is a
// pure function of (seed, edge, epoch) — two Scenario values with the same
// spec agree everywhere, and a different seed disagrees somewhere.
func TestScheduleDeterministic(t *testing.T) {
	a := &Scenario{Seed: 5, Drop: 0.3, Delay: 0.3, DelayMs: 1, DelayJitterMs: 9, Duplicate: 0.3, Reorder: 0.3}
	b := &Scenario{Seed: 5, Drop: 0.3, Delay: 0.3, DelayMs: 1, DelayJitterMs: 9, Duplicate: 0.3, Reorder: 0.3}
	c := &Scenario{Seed: 6, Drop: 0.3, Delay: 0.3, DelayMs: 1, DelayJitterMs: 9, Duplicate: 0.3, Reorder: 0.3}
	diff := 0
	for from := 0; from < 6; from++ {
		for to := 0; to < 6; to++ {
			for e := 0; e < 50; e++ {
				if a.DropAt(from, to, e) != b.DropAt(from, to, e) ||
					a.DuplicateAt(from, to, e) != b.DuplicateAt(from, to, e) ||
					a.ReorderAt(from, to, e) != b.ReorderAt(from, to, e) {
					t.Fatalf("same spec disagrees at (%d,%d,%d)", from, to, e)
				}
				da, oka := a.DelayAt(from, to, e)
				db, okb := b.DelayAt(from, to, e)
				if oka != okb || da != db {
					t.Fatalf("delay disagrees at (%d,%d,%d)", from, to, e)
				}
				if a.DropAt(from, to, e) != c.DropAt(from, to, e) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical drop schedules")
	}
}

// TestScheduleRates sanity-checks that probabilities land near their
// targets over many cells (the hash is a uniform stream, not a bias).
func TestScheduleRates(t *testing.T) {
	s := &Scenario{Seed: 77, Drop: 0.25}
	hits, total := 0, 0
	for from := 0; from < 20; from++ {
		for to := 0; to < 20; to++ {
			for e := 0; e < 25; e++ {
				total++
				if s.DropAt(from, to, e) {
					hits++
				}
			}
		}
	}
	rate := float64(hits) / float64(total)
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("drop rate %.3f, want ~0.25", rate)
	}
}

func TestPartitionedCutsCrossGroupOnly(t *testing.T) {
	s := &Scenario{Partitions: []Partition{{From: 2, Until: 4, Groups: [][]int{{0, 1}, {2, 3}}}}}
	cases := []struct {
		from, to, epoch int
		cut             bool
	}{
		{0, 2, 2, true}, {2, 0, 3, true}, {1, 3, 2, true},
		{0, 1, 2, false}, {2, 3, 3, false}, // intra-group
		{0, 2, 1, false}, {0, 2, 4, false}, // outside the window
		{0, 4, 2, false}, {4, 0, 2, false}, // node 4 unlisted: unaffected
	}
	for _, c := range cases {
		if got := s.Partitioned(c.from, c.to, c.epoch); got != c.cut {
			t.Errorf("Partitioned(%d,%d,%d) = %v, want %v", c.from, c.to, c.epoch, got, c.cut)
		}
	}
}

func TestAbsentAndEdgeEpoch(t *testing.T) {
	s := &Scenario{Epochs: 10, Churn: []Churn{
		{Node: 2, Leave: 3, Rejoin: 5},
		{Node: 4, Leave: 6}, // permanent (rejoin unset)
	}}
	if s.Absent(2, 2) || !s.Absent(2, 3) || !s.Absent(2, 4) || s.Absent(2, 5) {
		t.Fatal("temporary churn window wrong")
	}
	if !s.Absent(4, 6) || !s.Absent(4, 99) || s.Absent(4, 5) {
		t.Fatal("permanent churn wrong")
	}
	// Edge 0->2: node 2 is absent epochs 3,4, so frames are suppressed at
	// sender epochs 2,3,4 (the frame sent at e is consumed at e+1). The
	// seq-th actual send maps to epochs 0,1,5,6,...
	want := []int{0, 1, 5, 6, 7}
	for seq, e := range want {
		if got := s.EdgeEpoch(0, 2, seq); got != e {
			t.Fatalf("EdgeEpoch(0,2,%d) = %d, want %d", seq, got, e)
		}
	}
	// Edges not touching churned nodes map 1:1.
	if s.EdgeEpoch(0, 1, 7) != 7 {
		t.Fatal("clean edge remapped")
	}
	// SendsAt symmetry: the absent sender sends nothing either.
	if s.SendsAt(2, 0, 3) || !s.SendsAt(2, 0, 5) {
		t.Fatal("SendsAt wrong for churned sender")
	}
}

func TestReorderSkipsFinalFrame(t *testing.T) {
	s := &Scenario{Seed: 3, Epochs: 5, Reorder: 1}
	if s.ReorderAt(0, 1, 4) {
		t.Fatal("final scheduled frame reordered (would strand the stash)")
	}
	if !s.ReorderAt(0, 1, 0) {
		t.Fatal("reorder with p=1 declined a mid-run frame")
	}
}

func TestLogCanonicalOrderAndCounts(t *testing.T) {
	var l Log
	l.Add(Event{Epoch: 2, From: 1, To: 0, Kind: KindDrop})
	l.Add(Event{Epoch: 0, From: 3, To: 2, Kind: KindDelay})
	l.Add(Event{Epoch: 0, From: 3, To: 2, Kind: KindDuplicate})
	l.Add(Event{Epoch: 0, From: 1, To: 2, Kind: KindPartition})
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Epoch > b.Epoch || (a.Epoch == b.Epoch && a.From > b.From) {
			t.Fatalf("events not canonically sorted: %v", evs)
		}
	}
	c := l.Counts()
	if c.Dropped != 2 || c.Delayed != 1 || c.Duplicated != 1 || c.PartitionDrops != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestCannedScenariosValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Canned() {
		if err := s.Validate(); err != nil {
			t.Errorf("canned %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate canned name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if _, ok := CannedByName("split-heal"); !ok {
		t.Fatal("split-heal missing")
	}
	if _, ok := CannedByName("nope"); ok {
		t.Fatal("unknown canned name resolved")
	}
}
