// Package faultnet is REX's deterministic chaos harness: a declarative
// Scenario describes network adversity — per-edge message drop, delay,
// duplication and reordering, scheduled partitions (split-brain at epoch E,
// healed at epoch F) and node churn (leave/rejoin, generalizing the
// simulator's permanent FailAt crashes) — and every fault decision is a
// pure function of (scenario seed, edge, epoch). The same spec therefore
// replays the identical fault schedule bit-for-bit across processes and
// runs, which is what lets the conformance suite
// (internal/faultnet/scenariotest) assert replay determinism on the
// simulator, the in-process ChanNet cluster and real sharded TCP clusters
// alike.
//
// The package has two halves: the schedule (this file), consulted by
// internal/sim for epoch-level fault injection, and the transport wrapper
// (wrap.go), which injects the same faults under any live
// runtime.Endpoint.
package faultnet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Partition cuts the network into groups for the epoch range [From, Until):
// traffic between two nodes listed in different groups is dropped; nodes
// not listed in any group are unaffected.
type Partition struct {
	From   int     `json:"from"`
	Until  int     `json:"until"`
	Groups [][]int `json:"groups"`
}

// Churn takes one node offline for the epoch range [Leave, Rejoin): it
// stops gathering, training and sharing, and neighbors neither send to nor
// wait for it (the oracle-detected leave, exactly like sim.Config.FailAt
// models crashes). Rejoin <= Leave makes the leave permanent.
type Churn struct {
	Node   int `json:"node"`
	Leave  int `json:"leave"`
	Rejoin int `json:"rejoin"`
}

// Scenario is one declarative fault schedule. The zero value injects
// nothing. All probabilities are per directed edge per epoch; every
// decision is derived from Seed by hashing, never from shared mutable RNG
// state, so decisions are independent of evaluation order and identical in
// every process of a sharded cluster.
type Scenario struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Epochs is the schedule horizon (the run length the scenario was
	// written for); the reorder fault uses it to avoid stashing a sender's
	// final frame, and validation checks partitions/churn fall inside it.
	Epochs int `json:"epochs"`

	// Drop is the probability a gossip frame is silently discarded.
	Drop float64 `json:"drop,omitempty"`
	// Delay is the probability a frame is delayed; DelayMs/DelayJitterMs
	// give the base and the deterministic jitter bound (milliseconds).
	Delay         float64 `json:"delay,omitempty"`
	DelayMs       int     `json:"delay_ms,omitempty"`
	DelayJitterMs int     `json:"delay_jitter_ms,omitempty"`
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability a frame swaps places with the next frame
	// on the same directed edge.
	Reorder float64 `json:"reorder,omitempty"`

	Partitions []Partition `json:"partitions,omitempty"`
	Churn      []Churn     `json:"churn,omitempty"`

	// GraceRounds is how many consecutive missed rounds the live runner's
	// failure detector tolerates per neighbor before dropping it
	// (runtime.Config.PeerGrace); scenarios with partitions set it at
	// least as long as the partition unless they mean to exercise the
	// drop/rejoin path.
	GraceRounds int `json:"grace_rounds,omitempty"`
	// Rejoin readmits failure-detector-dropped peers when their gossip
	// resumes (runtime.Config.Rejoin), and keeps probing them meanwhile.
	Rejoin bool `json:"rejoin,omitempty"`
	// TimeoutMs is the live round timeout (runtime.Config.RoundTimeout)
	// and the per-round timeout charge in the simulator's cost model when
	// an expected frame was faulted away.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Oracle selects oracle fault detection for the live runner: receivers
	// are told the drop/partition schedule and skip waiting for frames
	// that will never arrive. This eliminates the race between the first
	// healed/substituted frame and a symmetric round timeout, so live
	// replays are bit-exact — the property the conformance suite asserts.
	// (The simulator is always oracle; its TimeoutMs charge models the
	// detector's cost.) With Oracle false, scheduled losses surface only
	// through the round-timeout failure detector: realistic, and the mode
	// the liveness and grace/rejoin suites exercise, but heal-boundary
	// timing may race the timeout, so replay there asserts invariants
	// rather than bit-equality.
	Oracle bool `json:"oracle,omitempty"`
}

// Load reads and validates a scenario from a JSON file.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultnet: %w", err)
	}
	return Parse(b)
}

// Parse decodes and validates a JSON scenario.
func Parse(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("faultnet: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec for internally inconsistent values.
func (s *Scenario) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"delay", s.Delay}, {"duplicate", s.Duplicate}, {"reorder", s.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if s.DelayMs < 0 || s.DelayJitterMs < 0 || s.TimeoutMs < 0 || s.GraceRounds < 0 {
		return fmt.Errorf("faultnet: negative duration or grace")
	}
	for i, p := range s.Partitions {
		if p.Until <= p.From || p.From < 0 {
			return fmt.Errorf("faultnet: partition %d range [%d,%d) is empty", i, p.From, p.Until)
		}
		if len(p.Groups) < 2 {
			return fmt.Errorf("faultnet: partition %d needs at least two groups", i)
		}
		seen := map[int]bool{}
		for _, g := range p.Groups {
			for _, n := range g {
				if seen[n] {
					return fmt.Errorf("faultnet: partition %d lists node %d twice", i, n)
				}
				seen[n] = true
			}
		}
	}
	for i, c := range s.Churn {
		if c.Leave < 0 || c.Node < 0 {
			return fmt.Errorf("faultnet: churn %d has negative node or epoch", i)
		}
	}
	return nil
}

// Enabled reports whether the scenario injects anything at all.
func (s *Scenario) Enabled() bool {
	if s == nil {
		return false
	}
	return s.Drop > 0 || s.Delay > 0 || s.Duplicate > 0 || s.Reorder > 0 ||
		len(s.Partitions) > 0 || len(s.Churn) > 0
}

// Fault decision salts: independent hash streams per fault kind.
const (
	saltDrop uint64 = iota + 1
	saltDelay
	saltDelayJitter
	saltDuplicate
	saltReorder
)

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer
// with no shared state, so fault decisions commute across goroutines and
// processes.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll returns a uniform value in [0,1) for one (kind, edge, epoch) cell.
func (s *Scenario) roll(salt uint64, from, to, epoch int) float64 {
	h := splitmix64(uint64(s.Seed) ^ salt*0xD6E8FEB86659FD93)
	h = splitmix64(h ^ uint64(uint32(from)))
	h = splitmix64(h ^ uint64(uint32(to))<<20)
	h = splitmix64(h ^ uint64(uint32(epoch))<<40)
	return float64(h>>11) / (1 << 53)
}

// DropAt reports whether the gossip frame sent on edge from->to at the
// sender's given epoch is dropped.
func (s *Scenario) DropAt(from, to, epoch int) bool {
	return s != nil && s.Drop > 0 && s.roll(saltDrop, from, to, epoch) < s.Drop
}

// DelayAt reports the injected delay for the frame, if any.
func (s *Scenario) DelayAt(from, to, epoch int) (time.Duration, bool) {
	if s == nil || s.Delay <= 0 || s.roll(saltDelay, from, to, epoch) >= s.Delay {
		return 0, false
	}
	d := time.Duration(s.DelayMs) * time.Millisecond
	if s.DelayJitterMs > 0 {
		j := s.roll(saltDelayJitter, from, to, epoch)
		d += time.Duration(j * float64(s.DelayJitterMs) * float64(time.Millisecond))
	}
	return d, true
}

// DuplicateAt reports whether the frame is delivered twice.
func (s *Scenario) DuplicateAt(from, to, epoch int) bool {
	return s != nil && s.Duplicate > 0 && s.roll(saltDuplicate, from, to, epoch) < s.Duplicate
}

// ReorderAt reports whether the frame swaps with the next frame on the
// same directed edge. The final scheduled frame of an edge never reorders
// (there is no next frame to swap with — stashing it would strand it).
func (s *Scenario) ReorderAt(from, to, epoch int) bool {
	if s == nil || s.Reorder <= 0 {
		return false
	}
	if s.Epochs > 0 && !s.edgeSendsAfter(from, to, epoch) {
		return false
	}
	return s.roll(saltReorder, from, to, epoch) < s.Reorder
}

// edgeSendsAfter reports whether edge from->to carries another scheduled
// frame at any epoch in (epoch, Epochs-1]; the -1 is because a frame sent
// at the final epoch requires the receiver active one epoch past the end,
// which SendsAt treats as always true.
func (s *Scenario) edgeSendsAfter(from, to, epoch int) bool {
	for e := epoch + 1; e < s.Epochs; e++ {
		if s.SendsAt(from, to, e) {
			return true
		}
	}
	return false
}

// Partitioned reports whether edge from->to is cut by a scheduled
// partition at the sender's given epoch.
func (s *Scenario) Partitioned(from, to, epoch int) bool {
	if s == nil {
		return false
	}
	for _, p := range s.Partitions {
		if epoch < p.From || epoch >= p.Until {
			continue
		}
		gf, gt := -1, -1
		for gi, g := range p.Groups {
			for _, n := range g {
				if n == from {
					gf = gi
				}
				if n == to {
					gt = gi
				}
			}
		}
		if gf >= 0 && gt >= 0 && gf != gt {
			return true
		}
	}
	return false
}

// Absent reports whether a node is churned away at an epoch.
func (s *Scenario) Absent(node, epoch int) bool {
	if s == nil || epoch < 0 {
		return false
	}
	for _, c := range s.Churn {
		if c.Node != node || epoch < c.Leave {
			continue
		}
		if c.Rejoin <= c.Leave || epoch < c.Rejoin {
			return true
		}
	}
	return false
}

// SendsAt reports whether the runner schedules a gossip frame on edge
// from->to at the sender's given epoch: the sender must be active, and the
// receiver active both this epoch and the next (the epoch at which it
// gathers the frame) — the oracle-churn rule that keeps stale frames out
// of rejoining nodes' inboxes. Epochs at or past the horizon count as
// active.
func (s *Scenario) SendsAt(from, to, epoch int) bool {
	if s == nil {
		return true
	}
	if s.Absent(from, epoch) || s.Absent(to, epoch) {
		return false
	}
	if s.Epochs > 0 && epoch+1 >= s.Epochs {
		return true
	}
	return !s.Absent(to, epoch+1)
}

// EdgeEpoch maps the seq-th frame actually sent on edge from->to (counting
// from 0) back to the sender epoch it belongs to, skipping epochs where
// the schedule suppresses the send. The transport wrapper uses it to
// attribute wire frames to epochs without any in-band tagging.
func (s *Scenario) EdgeEpoch(from, to, seq int) int {
	if s == nil || len(s.Churn) == 0 {
		return seq
	}
	e := 0
	for skipped := 0; ; e++ {
		if s.SendsAt(from, to, e) {
			if seq == 0 {
				return e
			}
			seq--
		} else if skipped++; skipped > 1<<16 {
			return e // permanent churn: clamp rather than loop forever
		}
	}
}

// Timeout returns TimeoutMs as a duration (0 when unset).
func (s *Scenario) Timeout() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.TimeoutMs) * time.Millisecond
}

// Event kinds recorded in fault logs.
const (
	KindDrop      = "drop"
	KindDelay     = "delay"
	KindDuplicate = "duplicate"
	KindReorder   = "reorder"
	KindPartition = "partition"
	KindLeave     = "leave"
	KindRejoin    = "rejoin"
)

// Event is one fault actually injected at run time (not merely scheduled):
// a frame that existed and was dropped, delayed, duplicated or reordered,
// or a node that left or rejoined. Replay determinism asserts the full
// event multiset matches across runs.
type Event struct {
	Epoch int    `json:"epoch"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Kind  string `json:"kind"`
}

func (e Event) String() string {
	return fmt.Sprintf("e%d %d->%d %s", e.Epoch, e.From, e.To, e.Kind)
}

// Counts aggregates injected faults.
type Counts struct {
	Dropped, Delayed, Duplicated, Reordered int64
	PartitionDrops                          int64
	Leaves, Rejoins                         int64
}

// Log collects fault events from concurrent injectors. Events() returns a
// canonically sorted copy so logs from different runs compare directly
// regardless of goroutine interleaving.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add records one event.
func (l *Log) Add(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns the canonically ordered event list.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	SortEvents(out)
	return out
}

// SortEvents orders events canonically: epoch, then sender, receiver, kind.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
}

// Counts tallies the log.
func (l *Log) Counts() Counts {
	var c Counts
	for _, ev := range l.Events() {
		switch ev.Kind {
		case KindDrop:
			c.Dropped++
		case KindDelay:
			c.Delayed++
		case KindDuplicate:
			c.Duplicated++
		case KindReorder:
			c.Reordered++
		case KindPartition:
			c.PartitionDrops++
			c.Dropped++
		case KindLeave:
			c.Leaves++
		case KindRejoin:
			c.Rejoins++
		}
	}
	return c
}

// Canned returns the named scenario library the conformance suite runs
// against every backend. The partition and churn schedules reference node
// ids 0..3 — the suite's 4-node workload; Seed/Epochs are part of the spec
// so the same JSON replays identically anywhere.
func Canned() []Scenario {
	return []Scenario{
		{
			Name: "faultfree", Seed: 11, Epochs: 6,
		},
		{
			Name: "lossy", Seed: 12, Epochs: 6,
			Drop: 0.08, Delay: 0.2, DelayMs: 2, DelayJitterMs: 4,
			GraceRounds: 6, Rejoin: true, TimeoutMs: 5000, Oracle: true,
		},
		{
			Name: "flaky", Seed: 13, Epochs: 6,
			Duplicate: 0.10, Reorder: 0.08, Delay: 0.15, DelayMs: 1, DelayJitterMs: 3,
			GraceRounds: 6, Rejoin: true, TimeoutMs: 5000, Oracle: true,
		},
		{
			Name: "split-heal", Seed: 14, Epochs: 6,
			Partitions:  []Partition{{From: 2, Until: 3, Groups: [][]int{{0, 1}, {2, 3}}}},
			GraceRounds: 6, Rejoin: true, TimeoutMs: 5000, Oracle: true,
		},
		{
			Name: "churn", Seed: 15, Epochs: 6,
			Churn: []Churn{{Node: 3, Leave: 2, Rejoin: 4}},
		},
	}
}

// CannedByName returns a canned scenario by name.
func CannedByName(name string) (Scenario, bool) {
	for _, s := range Canned() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Resolve turns a CLI -scenario argument into a scenario: a canned name
// first, else a JSON spec file path.
func Resolve(arg string) (*Scenario, error) {
	if sc, ok := CannedByName(arg); ok {
		return &sc, nil
	}
	return Load(arg)
}
