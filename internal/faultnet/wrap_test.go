package faultnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
	"rex/internal/topology"
)

// mockEndpoint records sends.
type mockEndpoint struct {
	mu    sync.Mutex
	sends []mockSend
	inbox chan runtime.Envelope
	done  chan struct{}
}

type mockSend struct {
	to   int
	data []byte
}

func newMock() *mockEndpoint {
	return &mockEndpoint{inbox: make(chan runtime.Envelope, 64), done: make(chan struct{})}
}

func (m *mockEndpoint) Send(to int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sends = append(m.sends, mockSend{to, append([]byte(nil), data...)})
	return nil
}
func (m *mockEndpoint) Inbox() <-chan runtime.Envelope { return m.inbox }
func (m *mockEndpoint) Done() <-chan struct{}          { return m.done }
func (m *mockEndpoint) Close() error                   { close(m.done); return nil }

func (m *mockEndpoint) frames() []mockSend {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]mockSend(nil), m.sends...)
}

func gossipFrame(b byte) []byte { return []byte{runtime.FrameKindGossip, b} }

func TestWrapDropsAndCounts(t *testing.T) {
	inner := newMock()
	var log Log
	sc := &Scenario{Seed: 1, Drop: 1}
	ep := Wrap(inner, 0, sc, &log)
	for i := 0; i < 3; i++ {
		if err := ep.Send(1, gossipFrame(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(inner.frames()); n != 0 {
		t.Fatalf("%d frames leaked through a 100%% drop", n)
	}
	dropped, delayed := ep.(runtime.FaultReporter).FaultCounts()
	if dropped != 3 || delayed != 0 {
		t.Fatalf("counts %d/%d", dropped, delayed)
	}
	evs := log.Events()
	if len(evs) != 3 || evs[0].Kind != KindDrop || evs[2].Epoch != 2 {
		t.Fatalf("log %v", evs)
	}
}

// TestWrapAttestationPassthrough: bootstrap traffic is never faulted.
func TestWrapAttestationPassthrough(t *testing.T) {
	inner := newMock()
	sc := &Scenario{Seed: 1, Drop: 1, Duplicate: 1}
	ep := Wrap(inner, 0, sc, nil)
	attest := []byte{runtime.FrameKindAttest, 9, 9}
	if err := ep.Send(1, attest); err != nil {
		t.Fatal(err)
	}
	fr := inner.frames()
	if len(fr) != 1 || fr[0].data[0] != runtime.FrameKindAttest {
		t.Fatalf("attestation frames faulted: %v", fr)
	}
}

func TestWrapDuplicates(t *testing.T) {
	inner := newMock()
	sc := &Scenario{Seed: 1, Duplicate: 1}
	ep := Wrap(inner, 0, sc, nil)
	ep.Send(1, gossipFrame(7))
	fr := inner.frames()
	if len(fr) != 2 || fr[0].data[1] != 7 || fr[1].data[1] != 7 {
		t.Fatalf("duplicate produced %v", fr)
	}
}

// TestWrapReorderSwapsAdjacentFrames: with reorder on every frame, frame k
// is stashed and released right after frame k+1 — and Close flushes a
// stash that never found a successor.
func TestWrapReorderSwapsAdjacentFrames(t *testing.T) {
	inner := newMock()
	sc := &Scenario{Seed: 1, Reorder: 1} // Epochs unset: no final-frame guard
	ep := Wrap(inner, 0, sc, nil)
	for i := byte(0); i < 4; i++ {
		ep.Send(1, gossipFrame(i))
	}
	got := inner.frames()
	want := []byte{1, 0, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("%d frames sent, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].data[1] != w {
			t.Fatalf("frame order %v, want %v", got, want)
		}
	}
	// A trailing odd frame stays stashed until Close.
	ep.Send(1, gossipFrame(4))
	if len(inner.frames()) != 4 {
		t.Fatal("stash leaked before Close")
	}
	ep.Close()
	fr := inner.frames()
	if len(fr) != 5 || fr[4].data[1] != 4 {
		t.Fatalf("Close did not flush the stash: %v", fr)
	}
}

// TestWrapDelayHoldsFrame: the delayed frame still arrives (after the
// scheduled hold) and is counted.
func TestWrapDelayHoldsFrame(t *testing.T) {
	inner := newMock()
	sc := &Scenario{Seed: 1, Delay: 1, DelayMs: 20}
	ep := Wrap(inner, 0, sc, nil)
	start := time.Now()
	ep.Send(1, gossipFrame(1))
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay not applied (send took %v)", d)
	}
	if len(inner.frames()) != 1 {
		t.Fatal("delayed frame lost")
	}
	_, delayed := ep.(runtime.FaultReporter).FaultCounts()
	if delayed != 1 {
		t.Fatalf("delayed count %d", delayed)
	}
}

// clusterWorkload builds a small live-cluster configuration (mirrors the
// runtime package's test helper; duplicated to avoid exporting test glue).
func clusterWorkload(t testing.TB, n, epochs int) runtime.ClusterConfig {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 21
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(21))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: 100, SharePoints: 30, Seed: 21,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	return runtime.ClusterConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes, Epochs: epochs,
		NewModel: func() model.Model { return mf.New(mcfg) },
	}
}

// TestHealedPartitionRestoresGossip is the regression for the old runner
// behavior that treated any peer loss as permanent: under a scheduled
// split-brain with zero grace, survivors drop their cross-partition
// neighbors exactly once, probes restore gossip after the heal, and every
// loss is matched by a rejoin — PeersLost never overcounts and no peer
// stays lost.
func TestHealedPartitionRestoresGossip(t *testing.T) {
	const n, epochs = 4, 10
	// The universal 15ms delay paces rounds so the post-heal probe window
	// is wide; without it the decoupled halves can finish their remaining
	// sub-millisecond rounds before the first probe lands.
	sc := &Scenario{
		Name: "regression-split", Seed: 42, Epochs: epochs,
		Delay: 1, DelayMs: 15,
		Partitions: []Partition{{From: 2, Until: 4, Groups: [][]int{{0, 1}, {2, 3}}}},
		Rejoin:     true, TimeoutMs: 300, // GraceRounds 0: first miss drops
	}
	cfg := clusterWorkload(t, n, epochs)
	var log Log
	sc.ApplyCluster(&cfg, &log)
	stats, err := runtime.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalLost := 0
	for i, s := range stats {
		if len(s.RMSE) != epochs {
			t.Fatalf("node %d ran %d epochs", i, len(s.RMSE))
		}
		if math.IsNaN(s.FinalRMSE) || s.FinalRMSE <= 0 || s.FinalRMSE > 3 {
			t.Fatalf("node %d did not converge: %v", i, s.FinalRMSE)
		}
		// No overcounting: a 2|2 split gives each node 2 cross neighbors,
		// each droppable at most once per partition episode.
		if s.PeersLost > 2 {
			t.Fatalf("node %d overcounted losses: %d", i, s.PeersLost)
		}
		// Everything lost during the split must have been healed.
		if s.PeersLost != s.Rejoins {
			t.Fatalf("node %d: %d losses but %d rejoins", i, s.PeersLost, s.Rejoins)
		}
		totalLost += s.PeersLost
	}
	if totalLost == 0 {
		t.Fatal("partition caused no detected losses; regression not exercised")
	}
	if c := log.Counts(); c.PartitionDrops == 0 {
		t.Fatalf("no partition drops logged: %+v", c)
	}
}

// TestScenarioGraceRidesOutPartition: with grace at least as long as the
// split, the failure detector drops nobody and the run stays clean.
func TestScenarioGraceRidesOutPartition(t *testing.T) {
	const n, epochs = 4, 6
	sc := &Scenario{
		Name: "grace-split", Seed: 43, Epochs: epochs,
		Partitions:  []Partition{{From: 2, Until: 3, Groups: [][]int{{0, 1}, {2, 3}}}},
		GraceRounds: 5, Rejoin: true, TimeoutMs: 300,
	}
	cfg := clusterWorkload(t, n, epochs)
	var log Log
	sc.ApplyCluster(&cfg, &log)
	stats, err := runtime.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.PeersLost != 0 || s.Rejoins != 0 {
			t.Fatalf("node %d: lost %d rejoined %d under covering grace", i, s.PeersLost, s.Rejoins)
		}
		if s.DroppedFrames == 0 && i < 2 {
			// Nodes 0/1 send cross frames at epoch 2 which the wrapper
			// cuts; the counter must surface that.
			t.Fatalf("node %d reported no dropped frames", i)
		}
	}
}

// TestOracleChurnLiveCluster: a node scheduled away for two epochs sits
// them out (NaN in its trajectory), neighbors never miss a round (no
// timeouts, no losses), and everyone converges after the rejoin.
func TestOracleChurnLiveCluster(t *testing.T) {
	const n, epochs = 4, 7
	sc := &Scenario{
		Name: "churn-live", Seed: 44, Epochs: epochs,
		Churn: []Churn{{Node: 3, Leave: 2, Rejoin: 4}},
	}
	cfg := clusterWorkload(t, n, epochs)
	var log Log
	sc.ApplyCluster(&cfg, &log)
	stats, err := runtime.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.PeersLost != 0 {
			t.Fatalf("node %d lost peers under oracle churn", i)
		}
		if s.FinalRMSE <= 0 || s.FinalRMSE > 3 {
			t.Fatalf("node %d rmse %v", i, s.FinalRMSE)
		}
	}
	for e := 2; e < 4; e++ {
		if !math.IsNaN(stats[3].RMSE[e]) {
			t.Fatalf("churned node has RMSE %v at absent epoch %d", stats[3].RMSE[e], e)
		}
	}
	if math.IsNaN(stats[3].RMSE[4]) || math.IsNaN(stats[3].RMSE[epochs-1]) {
		t.Fatal("churned node did not resume after rejoin")
	}
}
