// Package scenariotest is the chaos-scenario conformance harness: it runs
// a faultnet.Scenario against every execution backend REX has — the
// deterministic simulator (internal/sim), an in-process ChanNet cluster,
// and a real sharded TCP cluster (two ShardNets bridged over loopback) —
// and gives the conformance suite one shape to assert over:
//
//   - replay determinism: the same (seed, spec) must reproduce bit-identical
//     per-epoch RMSE trajectories and identical fault-event logs, run after
//     run, on every backend;
//   - convergence envelopes: surviving nodes must reach a final RMSE within
//     a scenario-specific factor of the fault-free run;
//   - liveness: every run must complete under a deadline — partitions,
//     churn and reordering must never deadlock the per-peer lanes.
package scenariotest

import (
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
	"rex/internal/sim"
	"rex/internal/topology"
)

// Nodes is the conformance workload size; the canned scenarios' partition
// groups and churn entries reference ids 0..Nodes-1.
const Nodes = 4

// Workload is the shared 4-node fully-connected D-PSGD REX workload every
// backend runs.
type Workload struct {
	Train, Test [][]dataset.Rating
	Graph       *topology.Graph
	MCfg        mf.Config
	// Wire selects the gossip frame encoding for the live backends (the
	// zero value is the delta wire, so the whole conformance matrix runs
	// over delta streams by default); the wire-equivalence tests flip it
	// to runtime.WireFull and assert identical trajectories.
	Wire runtime.WireMode
}

// NewWorkload builds the workload deterministically from a fixed dataset
// seed (independent of the scenario seed, which only drives faults).
func NewWorkload(t testing.TB) *Workload {
	t.Helper()
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = 21
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(21))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(Nodes, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(Nodes, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	return &Workload{
		Train: trainParts, Test: testParts,
		Graph: topology.FullyConnected(Nodes),
		MCfg:  mf.DefaultConfig(),
	}
}

func (w *Workload) nodes() []*core.Node {
	nodes := make([]*core.Node, Nodes)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: 100, SharePoints: 30, Seed: 21,
		}, mf.New(w.MCfg), w.Train[i], w.Test[i])
	}
	return nodes
}

// Run is one backend execution: per-node per-epoch RMSE (the simulator
// reports a single mean-RMSE row), the canonical fault-event log, and the
// per-node stats for live backends.
type Run struct {
	RMSE   [][]float64
	Events []faultnet.Event
	Stats  []*runtime.Stats
}

// FinalMeanRMSE averages the last finite RMSE of every trajectory.
func (r *Run) FinalMeanRMSE() float64 {
	sum, cnt := 0.0, 0
	for _, row := range r.RMSE {
		for e := len(row) - 1; e >= 0; e-- {
			if !math.IsNaN(row[e]) {
				sum += row[e]
				cnt++
				break
			}
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}

// RunSim executes the scenario on the simulator backend.
func RunSim(t testing.TB, w *Workload, sc *faultnet.Scenario) *Run {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Graph: w.Graph, Algo: gossip.DPSGD, Mode: core.DataSharing,
		Epochs: sc.Epochs, StepsPerEpoch: 100, SharePoints: 30,
		NewModel: func(int) model.Model { return mf.New(w.MCfg) },
		Train:    w.Train, Test: w.Test,
		Compute:  sim.MFCompute(w.MCfg.K),
		Scenario: sc,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, len(res.Series))
	for e, row := range res.Series {
		series[e] = row.MeanRMSE
	}
	return &Run{RMSE: [][]float64{series}, Events: res.FaultLog}
}

// RunChanNet executes the scenario on an in-process ChanNet cluster.
func RunChanNet(t testing.TB, w *Workload, sc *faultnet.Scenario, secure bool) *Run {
	t.Helper()
	cfg := runtime.ClusterConfig{
		Graph: w.Graph, Nodes: w.nodes(), Epochs: sc.Epochs,
		Secure: secure, Wire: w.Wire,
		// Entropy stays nil (crypto/rand): it feeds only key material,
		// never the learning, so replay determinism is unaffected.
		NewModel: func() model.Model { return mf.New(w.MCfg) },
	}
	var log faultnet.Log
	sc.ApplyCluster(&cfg, &log)
	var stats []*runtime.Stats
	deadline(t, "ChanNet cluster", func() {
		var err error
		stats, err = runtime.RunCluster(cfg)
		if err != nil {
			t.Error(err)
		}
	})
	return liveRun(stats, &log)
}

// RunShardTCP executes the scenario as two real TCP-bridged shard
// processes' worth of ShardNets inside this test binary — the same
// transport path two `rexnode -shard` processes take, with one shared
// fault log for assertions.
func RunShardTCP(t testing.TB, w *Workload, sc *faultnet.Scenario) *Run {
	t.Helper()
	const shards = 2
	addrs := freePorts(t, shards)
	shardAddrs := map[int]string{0: addrs[0], 1: addrs[1]}
	nodes := w.nodes()
	var log faultnet.Log
	merged := make([]*runtime.Stats, Nodes)
	deadline(t, "sharded TCP cluster", func() {
		type result struct {
			stats map[int]*runtime.Stats
			err   error
		}
		results := make(chan result, shards)
		for s := 0; s < shards; s++ {
			go func(s int) {
				cfg := runtime.ShardConfig{
					Graph: w.Graph, Nodes: nodes,
					Shard: s, NumShards: shards,
					ListenAddr: addrs[s], ShardAddrs: shardAddrs,
					Epochs:   sc.Epochs,
					Wire:     w.Wire,
					NewModel: func() model.Model { return mf.New(w.MCfg) },
				}
				sc.ApplyShard(&cfg, &log)
				stats, err := runtime.RunShard(cfg)
				results <- result{stats, err}
			}(s)
		}
		for s := 0; s < shards; s++ {
			res := <-results
			if res.err != nil {
				t.Error(res.err)
				continue
			}
			for id, st := range res.stats {
				merged[id] = st
			}
		}
	})
	return liveRun(merged, &log)
}

func liveRun(stats []*runtime.Stats, log *faultnet.Log) *Run {
	run := &Run{Stats: stats, Events: log.Events()}
	for _, st := range stats {
		if st == nil {
			run.RMSE = append(run.RMSE, nil)
			continue
		}
		run.RMSE = append(run.RMSE, append([]float64(nil), st.RMSE...))
	}
	return run
}

// deadline runs fn, failing the test if it has not returned in time — the
// liveness assertion: no fault schedule may deadlock a backend.
func deadline(t testing.TB, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("%s deadlocked (no completion in 120s)", what)
	}
}

// freePorts reserves n distinct localhost TCP ports (closed before
// returning; a parallel process could in principle steal one).
func freePorts(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// SameTrajectories asserts two runs match bit for bit: every node's RMSE
// at every epoch (NaN gaps from churn included) and the full fault log.
func SameTrajectories(t testing.TB, what string, a, b *Run) {
	t.Helper()
	if len(a.RMSE) != len(b.RMSE) {
		t.Fatalf("%s: %d vs %d trajectories", what, len(a.RMSE), len(b.RMSE))
	}
	for i := range a.RMSE {
		if len(a.RMSE[i]) != len(b.RMSE[i]) {
			t.Fatalf("%s node %d: %d vs %d epochs", what, i, len(a.RMSE[i]), len(b.RMSE[i]))
		}
		for e := range a.RMSE[i] {
			if math.Float64bits(a.RMSE[i][e]) != math.Float64bits(b.RMSE[i][e]) {
				t.Fatalf("%s node %d epoch %d: %v != %v (replay not bit-identical)",
					what, i, e, a.RMSE[i][e], b.RMSE[i][e])
			}
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: fault logs differ: %d vs %d events\n%v\n%v",
			what, len(a.Events), len(b.Events), a.Events, b.Events)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("%s: fault log diverged at %d: %v != %v", what, i, a.Events[i], b.Events[i])
		}
	}
}
