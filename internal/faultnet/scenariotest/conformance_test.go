package scenariotest

import (
	"math"
	"testing"

	"rex/internal/faultnet"
)

// envelopes gives each canned scenario its convergence bound: the maximum
// allowed ratio of final RMSE (across surviving nodes) to the fault-free
// run's final RMSE on the same backend. The matrix of what each scenario
// asserts is documented in README "Chaos scenarios".
var envelopes = map[string]float64{
	"faultfree":  1.0000001, // identity modulo float printing
	"lossy":      1.20,
	"flaky":      1.20,
	"split-heal": 1.20,
	"churn":      1.20,
}

func cannedByNameOrDie(t *testing.T, name string) *faultnet.Scenario {
	t.Helper()
	sc, ok := faultnet.CannedByName(name)
	if !ok {
		t.Fatalf("canned scenario %q missing", name)
	}
	return &sc
}

// TestReplayDeterminismSim: simulator leg of the replay acceptance over
// the whole canned library.
func TestReplayDeterminismSim(t *testing.T) {
	w := NewWorkload(t)
	for _, sc := range faultnet.Canned() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := RunSim(t, w, &sc)
			b := RunSim(t, w, &sc)
			SameTrajectories(t, "sim/"+sc.Name, a, b)
			if sc.Enabled() && len(a.Events) == 0 {
				t.Fatalf("scenario %q injected nothing", sc.Name)
			}
		})
	}
}

// TestReplayDeterminismChanNet: the live in-process cluster replays every
// canned scenario bit-for-bit — same seed and spec, two full cluster runs,
// identical per-node per-epoch RMSE and fault logs.
func TestReplayDeterminismChanNet(t *testing.T) {
	w := NewWorkload(t)
	for _, sc := range faultnet.Canned() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := RunChanNet(t, w, &sc, false)
			b := RunChanNet(t, w, &sc, false)
			SameTrajectories(t, "channet/"+sc.Name, a, b)
		})
	}
}

// TestReplayDeterminismChanNetSecure: the same property with attestation
// and AES-GCM sealing on — the explicit-sequence channel framing must
// absorb duplicates and reorders without perturbing the learning, and
// crypto must never leak nondeterminism into trajectories.
func TestReplayDeterminismChanNetSecure(t *testing.T) {
	w := NewWorkload(t)
	sc := cannedByNameOrDie(t, "flaky")
	a := RunChanNet(t, w, sc, true)
	b := RunChanNet(t, w, sc, true)
	SameTrajectories(t, "channet-secure/flaky", a, b)
	// And secure == native: transport protections never touch learning.
	native := RunChanNet(t, w, sc, false)
	SameTrajectories(t, "channet-secure-vs-native/flaky", a, native)
}

// TestReplayDeterminismShardTCP: the sharded-TCP leg of the acceptance,
// on the scenarios that exercise cross-shard faults — the split-heal
// partition falls exactly on the shard boundary (nodes 0,1 | 2,3), so
// every cut frame crosses the TCP bridge.
func TestReplayDeterminismShardTCP(t *testing.T) {
	w := NewWorkload(t)
	for _, name := range []string{"split-heal", "churn"} {
		sc := cannedByNameOrDie(t, name)
		t.Run(name, func(t *testing.T) {
			a := RunShardTCP(t, w, sc)
			b := RunShardTCP(t, w, sc)
			SameTrajectories(t, "shardtcp/"+name, a, b)
		})
	}
}

// TestShardMatchesChanNet: the transport must never change the learning —
// a scenario replayed on the sharded TCP cluster lands on the same
// trajectories as the in-process cluster (fault logs included).
func TestShardMatchesChanNet(t *testing.T) {
	w := NewWorkload(t)
	sc := cannedByNameOrDie(t, "split-heal")
	chanRun := RunChanNet(t, w, sc, false)
	shardRun := RunShardTCP(t, w, sc)
	SameTrajectories(t, "shard-vs-channet/split-heal", chanRun, shardRun)
}

// TestConvergenceEnvelopes: on every backend, each scenario's surviving
// nodes reach a final RMSE within the scenario's envelope of the
// fault-free run on that backend.
func TestConvergenceEnvelopes(t *testing.T) {
	w := NewWorkload(t)
	free := cannedByNameOrDie(t, "faultfree")
	backends := []struct {
		name string
		run  func(t *testing.T, sc *faultnet.Scenario) *Run
	}{
		{"sim", func(t *testing.T, sc *faultnet.Scenario) *Run { return RunSim(t, w, sc) }},
		{"channet", func(t *testing.T, sc *faultnet.Scenario) *Run { return RunChanNet(t, w, sc, false) }},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			base := be.run(t, free).FinalMeanRMSE()
			if math.IsNaN(base) || base <= 0 {
				t.Fatalf("fault-free baseline RMSE %v", base)
			}
			for _, sc := range faultnet.Canned() {
				sc := sc
				if sc.Name == "faultfree" {
					continue
				}
				t.Run(sc.Name, func(t *testing.T) {
					got := be.run(t, &sc).FinalMeanRMSE()
					bound := envelopes[sc.Name]
					if bound == 0 {
						t.Fatalf("scenario %q has no envelope entry", sc.Name)
					}
					if math.IsNaN(got) || got > base*bound {
						t.Fatalf("final RMSE %.4f outside envelope %.2fx of fault-free %.4f",
							got, bound, base)
					}
				})
			}
		})
	}
}

// TestLivenessDetectorPartitionHeal: the non-oracle (timeout-detector)
// partition on both live backends — the hard liveness case: cross traffic
// vanishes mid-run, the failure detector drops peers, probes restore them
// after the heal, and nothing deadlocks the per-peer lanes. Because heal
// timing races the symmetric timeouts, this asserts invariants, not
// bit-equality (the oracle scenarios above carry the bit-replay
// guarantee).
func TestLivenessDetectorPartitionHeal(t *testing.T) {
	w := NewWorkload(t)
	// Delay=1/15ms paces every round: after a bilateral drop the two halves
	// free-run with no cross barrier, and without pacing they can finish
	// their remaining (sub-millisecond) rounds before the first post-heal
	// probe crosses the wire — the rejoin would be a microsecond race.
	sc := &faultnet.Scenario{
		Name: "detector-split", Seed: 77, Epochs: 10,
		Delay: 1, DelayMs: 15,
		Partitions: []faultnet.Partition{{From: 2, Until: 4, Groups: [][]int{{0, 1}, {2, 3}}}},
		Rejoin:     true, TimeoutMs: 300, // grace 0: losses must occur and heal
	}
	check := func(t *testing.T, run *Run) {
		for i, st := range run.Stats {
			if st == nil {
				t.Fatalf("node %d missing stats", i)
			}
			if len(st.RMSE) != sc.Epochs {
				t.Fatalf("node %d ran %d epochs", i, len(st.RMSE))
			}
			if st.FinalRMSE <= 0 || st.FinalRMSE > 3 {
				t.Fatalf("node %d rmse %v", i, st.FinalRMSE)
			}
			if st.PeersLost > 2 {
				t.Fatalf("node %d overcounted losses: %d", i, st.PeersLost)
			}
			if st.PeersLost != st.Rejoins {
				t.Fatalf("node %d: %d losses, %d rejoins — partition did not heal", i, st.PeersLost, st.Rejoins)
			}
		}
	}
	t.Run("channet", func(t *testing.T) { check(t, RunChanNet(t, w, sc, false)) })
	t.Run("shardtcp", func(t *testing.T) { check(t, RunShardTCP(t, w, sc)) })
}

// TestFaultCountersSurfaceInStats: the runner exposes the wrapper's
// injected-fault counters (Stats.DroppedFrames/DelayedFrames) so operators
// can see adversity in live runs.
func TestFaultCountersSurfaceInStats(t *testing.T) {
	w := NewWorkload(t)
	run := RunChanNet(t, w, cannedByNameOrDie(t, "lossy"), false)
	var dropped, delayed int64
	for _, st := range run.Stats {
		dropped += st.DroppedFrames
		delayed += st.DelayedFrames
	}
	if dropped == 0 || delayed == 0 {
		t.Fatalf("fault counters not surfaced: dropped %d delayed %d", dropped, delayed)
	}
	c := faultnet.Counts{}
	for _, ev := range run.Events {
		if ev.Kind == faultnet.KindDrop {
			c.Dropped++
		}
	}
	if c.Dropped != dropped {
		t.Fatalf("stats count %d drops, log has %d", dropped, c.Dropped)
	}
}
