package scenariotest

import (
	"testing"

	"rex/internal/faultnet"
	"rex/internal/runtime"
)

// TestWireFullMatchesDelta is the wire-equivalence acceptance: the same
// scenario run with the full (flat-frame) wire and the delta wire lands
// on bit-identical trajectories and fault logs — delta encoding is pure
// wire compression, invisible to the learning, under drops, duplicates,
// reorders and partitions alike.
func TestWireFullMatchesDelta(t *testing.T) {
	w := NewWorkload(t)
	for _, name := range []string{"faultfree", "lossy", "flaky", "split-heal"} {
		sc := cannedByNameOrDie(t, name)
		t.Run(name, func(t *testing.T) {
			w.Wire = runtime.WireDelta
			delta := RunChanNet(t, w, sc, false)
			w.Wire = runtime.WireFull
			full := RunChanNet(t, w, sc, false)
			w.Wire = runtime.WireDelta
			SameTrajectories(t, "wire-full-vs-delta/"+name, full, delta)
		})
	}
}

// TestWireFullMatchesDeltaSecure: the same equivalence with sealing on
// (delta frames ride the secure channel's explicit-seq framing) and
// across the sharded TCP backend.
func TestWireFullMatchesDeltaSecure(t *testing.T) {
	w := NewWorkload(t)
	sc := cannedByNameOrDie(t, "flaky")
	w.Wire = runtime.WireDelta
	delta := RunChanNet(t, w, sc, true)
	w.Wire = runtime.WireFull
	full := RunChanNet(t, w, sc, true)
	w.Wire = runtime.WireDelta
	SameTrajectories(t, "wire-full-vs-delta-secure/flaky", full, delta)
}

// TestWireFullMatchesDeltaShardTCP: the equivalence holds over the real
// TCP bridge, where delta frames are also lane-batched.
func TestWireFullMatchesDeltaShardTCP(t *testing.T) {
	w := NewWorkload(t)
	sc := cannedByNameOrDie(t, "split-heal")
	w.Wire = runtime.WireDelta
	delta := RunShardTCP(t, w, sc)
	w.Wire = runtime.WireFull
	full := RunShardTCP(t, w, sc)
	w.Wire = runtime.WireDelta
	SameTrajectories(t, "wire-full-vs-delta-shardtcp/split-heal", full, delta)
}

// deltaStress is a dedicated high-loss scenario: every directed edge
// loses enough consecutive frames that receivers open sequence gaps past
// the resync threshold, forcing full-frame stream resets mid-run.
func deltaStress() *faultnet.Scenario {
	return &faultnet.Scenario{
		Name: "delta-stress", Seed: 31, Epochs: 10,
		Drop:        0.35,
		GraceRounds: 12, Rejoin: true, TimeoutMs: 5000, Oracle: true,
	}
}

// TestDeltaResyncRecovery drives the delta stream's loss-recovery path on
// a live cluster: the lossy link must tick Stats.Resyncs (at least one
// full-frame stream reset was sent), replay bit-for-bit, and still land
// on exactly the trajectories of the full wire under the same schedule —
// a resynced stream merges everything the flat encoding would have.
func TestDeltaResyncRecovery(t *testing.T) {
	w := NewWorkload(t)
	sc := deltaStress()

	a := RunChanNet(t, w, sc, false)
	b := RunChanNet(t, w, sc, false)
	SameTrajectories(t, "delta-stress replay", a, b)

	var resyncs, refs int64
	for _, st := range a.Stats {
		resyncs += st.Resyncs
		refs += st.DeltaRefs
	}
	if resyncs == 0 {
		t.Fatal("high-loss run sent no stream resets — resync path never exercised")
	}
	if refs == 0 {
		t.Fatal("no back-references at all — delta encoding degenerated to full frames")
	}

	w.Wire = runtime.WireFull
	full := RunChanNet(t, w, sc, false)
	w.Wire = runtime.WireDelta
	SameTrajectories(t, "delta-stress full-vs-delta", full, a)
	for _, st := range full.Stats {
		if st.Resyncs != 0 || st.DeltaRefs != 0 {
			t.Fatalf("full wire reported delta counters: %+v", st)
		}
	}
}

// TestWireCountersSurface checks the accounting the operator sees: on the
// delta wire, raw-equivalent bytes exceed bytes on the wire (the saving
// is real) and reference counts are nonzero on a fault-free run.
func TestWireCountersSurface(t *testing.T) {
	w := NewWorkload(t)
	run := RunChanNet(t, w, cannedByNameOrDie(t, "faultfree"), false)
	var raw, wire, refs int64
	for _, st := range run.Stats {
		raw += st.WireRawBytes
		wire += st.BytesOnWire
		refs += st.DeltaRefs
	}
	if refs == 0 {
		t.Fatal("fault-free delta run produced no back-references")
	}
	if raw <= wire {
		t.Fatalf("delta wire saved nothing: raw-equivalent %d <= on-wire %d", raw, wire)
	}
}
