// Package rex is a Go reproduction of "TEE-based decentralized recommender
// systems: The raw data sharing redemption" (Dhasade, Dresevic, Kermarrec,
// Pires — IPDPS 2022). REX is a decentralized collaborative-filtering
// recommender in which nodes exchange raw rating triplets instead of model
// parameters; trusted execution environments (SGX enclaves, simulated
// here) make that safe by concealing alien raw data even from the machine
// owner, after mutual attestation and over encrypted channels.
//
// The package exposes four layers:
//
//   - datasets: MovieLens-shaped synthetic generation, splitting and
//     partitioning (GenerateMovieLens, per-user / multi-user partitions);
//   - models: biased matrix factorization (NewMF) and a DNN recommender
//     (NewDNN), both implementing the Model interface;
//   - topologies: small-world, Erdős–Rényi and fully connected graphs;
//   - execution: a deterministic virtual-time simulator (Simulate) that
//     reproduces the paper's experiments — node steps within an epoch fan
//     out across a worker pool (SimConfig.Workers, default GOMAXPROCS)
//     with results bit-identical to a sequential run for any fixed seed —
//     and a live concurrent runtime (see internal/runtime via the rexnode
//     command) with real attestation and AES-GCM channels.
//
// A minimal comparison of REX against classical model sharing:
//
//	ds := rex.GenerateMovieLens(rex.MovieLensLatest().Scaled(0.1))
//	train, test := ds.SplitPerUser(0.7, rng)
//	... partition, build graph, then:
//	res, err := rex.Simulate(rex.SimConfig{ Mode: rex.DataSharing, ... })
//
// See examples/ for complete programs and cmd/rexbench for the harness
// that regenerates every table and figure of the paper.
package rex

import (
	"math/rand"

	"rex/internal/baseline"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/enclave"
	"rex/internal/gossip"
	"rex/internal/knn"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/nn"
	"rex/internal/peersampling"
	"rex/internal/rank"
	"rex/internal/runtime"
	"rex/internal/sim"
	"rex/internal/topology"
)

// Rating is one user-item interaction triplet.
type Rating = dataset.Rating

// Dataset is a rating collection with its id-space bounds.
type Dataset = dataset.Dataset

// Store is the deduplicating raw-data store enclaves keep in protected
// memory.
type Store = dataset.Store

// NewStore creates a store seeded with initial ratings.
func NewStore(initial []Rating) *Store { return dataset.NewStore(initial) }

// NewDataset builds a Dataset from ratings.
func NewDataset(ratings []Rating) *Dataset { return dataset.New(ratings) }

// MovieLensSpec parameterizes the synthetic MovieLens-shaped generator.
type MovieLensSpec = movielens.Spec

// MovieLensLatest is the spec matching the paper's MovieLens Latest row of
// Table I (100k ratings, 9k items, 610 users).
func MovieLensLatest() MovieLensSpec { return movielens.Latest() }

// MovieLens25MCapped matches the truncated MovieLens 25M row of Table I
// (2.25M ratings, 28.8k items, 15k users).
func MovieLens25MCapped() MovieLensSpec { return movielens.TwentyFiveMCapped() }

// GenerateMovieLens synthesizes a dataset from the spec.
func GenerateMovieLens(spec MovieLensSpec) *Dataset { return movielens.Generate(spec) }

// Model is the recommender contract shared by MF and the DNN.
type Model = model.Model

// RMSE computes the clamped root-mean-square error of a model on data.
func RMSE(m Model, data []Rating) float64 { return model.RMSE(m, data) }

// MFConfig holds matrix-factorization hyperparameters (paper §IV-A3a).
type MFConfig = mf.Config

// DefaultMFConfig returns the paper's MF hyperparameters: k=10, η=0.005,
// λ=0.1.
func DefaultMFConfig() MFConfig { return mf.DefaultConfig() }

// NewMF creates a biased matrix-factorization model.
func NewMF(cfg MFConfig) Model { return mf.New(cfg) }

// DNNConfig describes the DNN recommender (paper §IV-A3b).
type DNNConfig = nn.Config

// DefaultDNNConfig returns the paper's DNN hyperparameters for an id
// space: embeddings of 20, four hidden layers, Adam 1e-4, weight decay
// 1e-5.
func DefaultDNNConfig(numUsers, numItems int) DNNConfig {
	return nn.DefaultConfig(numUsers, numItems)
}

// NewDNN creates the DNN recommender.
func NewDNN(cfg DNNConfig) Model { return nn.NewNet(cfg) }

// Graph is an undirected communication topology.
type Graph = topology.Graph

// SmallWorld builds the paper's small-world topology (k close connections,
// pFar far-fetched probability; §IV-A2a uses k=6, pFar=0.03).
func SmallWorld(n, k int, pFar float64, rng *rand.Rand) *Graph {
	return topology.SmallWorld(n, k, pFar, rng)
}

// ErdosRenyi builds a connected G(n, p) random graph (§IV-A2b uses p=0.05).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	return topology.ErdosRenyi(n, p, rng)
}

// FullyConnected builds the complete graph (the paper's 8-node SGX
// deployment, §IV-C).
func FullyConnected(n int) *Graph { return topology.FullyConnected(n) }

// Topology is the read-only neighbor view the simulator consumes: either a
// materialized *Graph or a streamed generator such as SmallWorldStream,
// which derives neighbor lists on demand and makes 100k+ node simulations
// affordable in memory.
type Topology = topology.Source

// SmallWorldStream builds the streamed small-world topology: the same ring
// plus far-fetched shortcuts as SmallWorld, but derived lazily from seed
// with O(degree) memory per node touched.
func SmallWorldStream(n, k int, pFar float64, seed uint64) Topology {
	return topology.NewSmallWorldStream(n, k, pFar, seed)
}

// Mode selects the sharing scheme: DataSharing is REX, ModelSharing the
// classical decentralized-learning baseline.
type Mode = core.Mode

// Sharing modes.
const (
	ModelSharing = core.ModelSharing
	DataSharing  = core.DataSharing
)

// Algo selects the dissemination algorithm (§III-C).
type Algo = gossip.Algo

// Dissemination algorithms.
const (
	RMW   = gossip.RMW
	DPSGD = gossip.DPSGD
)

// SimConfig configures a deterministic virtual-time simulation run.
type SimConfig = sim.Config

// SimResult is a simulation run's learning curve and system metrics.
type SimResult = sim.Result

// EpochStats is one epoch row of a SimResult series.
type EpochStats = sim.EpochStats

// StageTimes is the per-epoch merge/train/share/test breakdown.
type StageTimes = sim.StageTimes

// NetParams describes virtual network links.
type NetParams = sim.NetParams

// ComputeParams translates model work into virtual seconds.
type ComputeParams = sim.ComputeParams

// DefaultNet returns the decentralized-user network profile used by the
// experiments.
func DefaultNet() NetParams { return sim.DefaultNet() }

// MFCompute returns the MF cost profile for the simulator.
func MFCompute(k int) ComputeParams { return sim.MFCompute(k) }

// DNNCompute returns the DNN cost profile for the simulator.
func DNNCompute(mlpParams, embDim, batch int) ComputeParams {
	return sim.DNNCompute(mlpParams, embDim, batch)
}

// Simulate runs a REX network under the virtual-time cost model. Epochs
// execute on a worker pool sized by cfg.Workers (0 = GOMAXPROCS, 1 =
// sequential); the result is deterministic in cfg.Seed and independent of
// the worker count.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// EnclaveParams are the SGX cost-model constants (EPC size, transition
// costs, memory-encryption overheads).
type EnclaveParams = enclave.Params

// DefaultEnclaveParams returns the calibrated SGX cost constants
// (EPC 93.5 MiB, 8µs transitions; see EXPERIMENTS.md).
func DefaultEnclaveParams() EnclaveParams { return enclave.DefaultParams() }

// NodeConfig parameterizes one protocol node.
type NodeConfig = core.Config

// Node is one REX participant's enclaved protocol state.
type Node = core.Node

// NewNode creates a protocol node from its initial local train/test data.
func NewNode(cfg NodeConfig, m Model, train, test []Rating) *Node {
	return core.NewNode(cfg, m, train, test)
}

// ClusterConfig configures a live in-process REX deployment with real
// attestation and encrypted gossip.
type ClusterConfig = runtime.ClusterConfig

// NodeStats reports one live node's stage timings, traffic and errors.
type NodeStats = runtime.Stats

// RunCluster executes a live REX cluster: concurrent nodes, mutual
// attestation (when Secure), AES-GCM sealed gossip.
func RunCluster(cfg ClusterConfig) ([]*NodeStats, error) { return runtime.RunCluster(cfg) }

// ShardConfig configures one shard of a multi-process live deployment:
// this process runs a contiguous block of the topology's nodes in-proc
// and bridges cross-shard edges over TCP (see cmd/rexnode -shard).
type ShardConfig = runtime.ShardConfig

// RunShard executes one shard of a sharded live cluster and returns the
// local nodes' stats keyed by node id.
func RunShard(cfg ShardConfig) (map[int]*NodeStats, error) { return runtime.RunShard(cfg) }

// ShardRange returns the node block [lo, hi) that shard s of k owns in an
// n-node sharded deployment.
func ShardRange(n, k, s int) (lo, hi int) { return runtime.ShardRange(n, k, s) }

// PeerSampling is the gossip membership service (partial views, swap,
// self-healing) REX networks can bootstrap their topology from.
type PeerSampling = peersampling.Service

// PeerSamplingConfig parameterizes the membership service.
type PeerSamplingConfig = peersampling.Config

// DefaultPeerSamplingConfig returns robust view/swap sizes.
func DefaultPeerSamplingConfig() PeerSamplingConfig { return peersampling.DefaultConfig() }

// NewPeerSampling creates a membership service for n nodes.
func NewPeerSampling(n int, cfg PeerSamplingConfig, rng *rand.Rand) *PeerSampling {
	return peersampling.New(n, cfg, rng)
}

// RankedItem is one entry of a top-N recommendation list.
type RankedItem = rank.Item

// TopN returns the n highest-predicted unseen items for a user.
func TopN(m Model, user uint32, numItems, n int, seen map[uint32]bool) []RankedItem {
	return rank.TopN(m, user, numItems, n, seen)
}

// RankMetrics aggregates precision@k, recall@k and NDCG@k.
type RankMetrics = rank.Metrics

// EvaluateRanking measures top-k recommendation quality of a model.
func EvaluateRanking(m Model, train, test []Rating, numItems, k int) RankMetrics {
	return rank.Evaluate(m, train, test, numItems, k)
}

// KNNConfig holds user-based KNN hyperparameters.
type KNNConfig = knn.Config

// KNNRecommender predicts from raw profiles — the recommender family that
// only works when raw data is available, i.e. over a REX store.
type KNNRecommender = knn.Recommender

// NewKNN builds a KNN recommender from raw ratings (e.g. a post-gossip
// REX store, SimResult.Stores[i]).
func NewKNN(cfg KNNConfig, ratings []Rating) *KNNRecommender { return knn.New(cfg, ratings) }

// DefaultKNNConfig returns common KNN settings (k=20 neighbours).
func DefaultKNNConfig() KNNConfig { return knn.DefaultConfig() }

// BaselineResult is the centralized baseline's learning curve.
type BaselineResult = baseline.Result

// Centralized trains a model on the full dataset in one place — the
// "Centralized (baseline)" curve in every figure.
func Centralized(m Model, train, test []Rating, epochs, stepsPerEpoch int, seed int64) *BaselineResult {
	return baseline.Run(m, train, test, epochs, stepsPerEpoch, seed)
}
