// Command rexbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rexbench -exp fig1           # one artifact (scaled-down workload)
//	rexbench -exp all -full      # everything at paper scale (slow)
//	rexbench -list               # enumerate artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rex/internal/experiments"
	"rex/internal/faultnet"
	"rex/internal/loadgen"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1, fig1..fig7, table2..table4, all)")
		full       = flag.Bool("full", false, "run paper-scale workloads (610/15000 users, 400 epochs)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		points     = flag.Int("points", 12, "series rows printed per curve")
		workers    = flag.Int("workers", 0, "simulator goroutines per epoch (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		scenario   = flag.String("scenario", "", "chaos scenario: a canned name (see internal/faultnet.Canned) or a JSON spec file; injects seeded message loss/delay/duplication/reordering, partitions and churn into every simulated run — combined with -load it runs the workload under the fault schedule (chaos-load)")
		list       = flag.Bool("list", false, "list available experiments")
		scale      = flag.Bool("scale", false, "run the users-vs-cost scale sweep instead of a paper artifact")
		scaleUsers = flag.String("scale-users", "1000,10000,50000,100000", "comma-separated node counts for -scale")
		scaleEp    = flag.Int("scale-epochs", 3, "epochs per size for -scale")
		scaleOut   = flag.String("scale-out", "", "write the -scale report as JSON (BENCH_scale.json schema) to this path")
		load       = flag.String("load", "", "run a declarative load workload instead of a paper artifact: a canned spec name (steady, zipf-burst, flashcrowd) or a JSON spec file")
		loadTarget = flag.String("load-target", "", "comma-separated rexd base URLs for live replay (e.g. http://127.0.0.1:8800,http://127.0.0.1:8801); empty = in-process sim cluster")
		loadNodes  = flag.Int("load-nodes", 2, "sim-mode cluster size for -load")
		loadWork   = flag.Int("load-workers", 4, "dispatch concurrency for -load")
		loadOut    = flag.String("load-out", "", "write the -load report as JSON (BENCH_load.json schema) to this path")
		loadRetry  = flag.Int("load-retries", 0, "per-event retry budget on 429/503/transport errors (deterministic backoff from the event hash)")
		loadTO     = flag.Duration("load-timeout", 0, "per-request timeout in live mode (0 = 30s)")
		chaosOut   = flag.String("chaos-out", "", "with -load and -scenario: write the chaos-load report as JSON (BENCH_chaosload.json schema) to this path")
	)
	flag.Parse()

	if *load != "" {
		spec, err := loadgen.Resolve(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: %v\n", err)
			os.Exit(2)
		}
		var urls []string
		if *loadTarget != "" {
			urls = strings.Split(*loadTarget, ",")
		}
		// -scenario (or -chaos-out) composes the chaos harness with the
		// load run: faults are injected under the workload (sim mode owns
		// the engines and wraps them; live mode expects the daemons to run
		// the same -scenario) and the report carries the invariant
		// evidence — acked-rating survival, shed fraction, fault counters.
		if *scenario != "" || *chaosOut != "" {
			var sc *faultnet.Scenario
			if *scenario != "" {
				sc, err = faultnet.Resolve(*scenario)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rexbench: %v\n", err)
					os.Exit(2)
				}
			}
			rep, err := experiments.RunChaosLoad(experiments.ChaosLoadConfig{
				Spec: spec, Scenario: sc, TargetURLs: urls, Nodes: *loadNodes,
				Workers: *loadWork, Retries: *loadRetry, Timeout: *loadTO,
				Out: os.Stdout,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "rexbench: chaos-load: %v\n", err)
				os.Exit(1)
			}
			if *chaosOut != "" {
				if err := experiments.WriteChaosLoadReport(rep, *chaosOut); err != nil {
					fmt.Fprintf(os.Stderr, "rexbench: chaos-load: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("### chaos-load report written to %s\n", *chaosOut)
			}
			return
		}
		rep, err := experiments.RunLoad(experiments.LoadConfig{
			Spec: spec, TargetURLs: urls, Nodes: *loadNodes, Workers: *loadWork,
			Retries: *loadRetry, Timeout: *loadTO, Out: os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: load: %v\n", err)
			os.Exit(1)
		}
		if *loadOut != "" {
			if err := experiments.WriteLoadReport(rep, *loadOut); err != nil {
				fmt.Fprintf(os.Stderr, "rexbench: load: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("### load report written to %s\n", *loadOut)
		}
		return
	}

	if *scale {
		var sizes []int
		for _, f := range strings.Split(*scaleUsers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "rexbench: bad -scale-users entry %q\n", f)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
		rep, err := experiments.RunScale(experiments.ScaleConfig{
			Sizes: sizes, Epochs: *scaleEp, Seed: *seed, Out: os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: scale: %v\n", err)
			os.Exit(1)
		}
		if *scaleOut != "" {
			if err := experiments.WriteScaleReport(rep, *scaleOut); err != nil {
				fmt.Fprintf(os.Stderr, "rexbench: scale: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("### scale report written to %s\n", *scaleOut)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	params := experiments.Params{Full: *full, Seed: *seed, Out: os.Stdout, Points: *points, Workers: *workers}
	if *scenario != "" {
		sc, err := faultnet.Resolve(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: %v\n", err)
			os.Exit(2)
		}
		params.Scenario = sc
		fmt.Printf("### chaos scenario %q (seed %d): drop=%.2f delay=%.2f dup=%.2f reorder=%.2f partitions=%d churn=%d\n\n",
			sc.Name, sc.Seed, sc.Drop, sc.Delay, sc.Duplicate, sc.Reorder, len(sc.Partitions), len(sc.Churn))
	}
	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		if err := e.Run(params); err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rexbench: unknown experiment %q; available: %v\n", *exp, experiments.IDs())
		os.Exit(2)
	}
	run(e)
}
