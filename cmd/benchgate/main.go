// benchgate is the CI bench-regression gate for the vec kernel layer. It
// compares two `go test -bench` outputs from the SAME machine — one forced
// onto the portable Go kernels (REX_VEC=go), one on the dispatched SIMD
// path — and fails if any gated benchmark's measured speedup falls more
// than the baseline tolerance below the ratio recorded in BENCH_vec.json.
//
// Gating on the speedup *ratio* rather than absolute ns/op is deliberate:
// CI runners vary wildly in clock speed and contention, so an absolute
// ceiling either flakes or is too loose to catch anything. The ratio of
// two interleaved runs on the same box cancels the machine out and
// isolates exactly what this repo controls — the quality of the SIMD
// kernels relative to the reference loops.
//
// Usage:
//
//	go test -run '^$' -bench ... -count 3 ./internal/vec .  (REX_VEC=go)   > slow.txt
//	go test -run '^$' -bench ... -count 3 ./internal/vec .  (dispatched)   > fast.txt
//	go run ./cmd/benchgate -baseline BENCH_vec.json -slow slow.txt -fast fast.txt
//
// The minimum ns/op across -count repetitions is used on both sides,
// which discards scheduler hiccups instead of averaging them in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	Note      string   `json:"note"`
	Recorded  string   `json:"recorded"`
	Tolerance float64  `json:"tolerance"`
	Kernels   []kernel `json:"kernels"`
}

type kernel struct {
	Bench string `json:"bench"`
	// Recorded ns/op per forced path on the reference machine —
	// documentation of the before/after, not used by the gate.
	GoNs   float64 `json:"go_ns"`
	SSE2Ns float64 `json:"sse2_ns,omitempty"`
	AVX2Ns float64 `json:"avx2_ns"`
	// MinSpeedup is the gated floor: dispatched-path speedup over the
	// forced-go path must stay above MinSpeedup*(1-Tolerance).
	MinSpeedup float64 `json:"min_speedup_vs_go"`
	Gate       bool    `json:"gate"`
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s-]+(?:/[^\s]+?)?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench returns the minimum ns/op per benchmark name (CPU-count
// suffix stripped) across all repetitions in a `go test -bench` output.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	basePath := flag.String("baseline", "BENCH_vec.json", "baseline JSON with gated speedup floors")
	slowPath := flag.String("slow", "", "bench output of the REX_VEC=go run")
	fastPath := flag.String("fast", "", "bench output of the dispatched run")
	flag.Parse()
	if *slowPath == "" || *fastPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -slow and -fast are required")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	slow, err := parseBench(*slowPath)
	if err != nil {
		fatal(err)
	}
	fast, err := parseBench(*fastPath)
	if err != nil {
		fatal(err)
	}

	failed := false
	fmt.Printf("%-34s %12s %12s %9s %9s  %s\n", "benchmark", "go ns/op", "simd ns/op", "speedup", "floor", "verdict")
	for _, k := range base.Kernels {
		s, okS := slow[k.Bench]
		f, okF := fast[k.Bench]
		if !okS || !okF {
			if k.Gate {
				fmt.Printf("%-34s missing from bench output (slow=%v fast=%v)\n", k.Bench, okS, okF)
				failed = true
			}
			continue
		}
		speedup := s / f
		floor := k.MinSpeedup * (1 - base.Tolerance)
		verdict := "ok"
		if !k.Gate {
			verdict = "recorded (ungated)"
		} else if speedup < floor {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-34s %12.2f %12.2f %8.2fx %8.2fx  %s\n", k.Bench, s, f, speedup, floor, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: SIMD speedup regressed below the recorded baseline")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
