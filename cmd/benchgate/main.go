// benchgate is the CI bench-regression gate for the vec kernel layer. It
// compares two `go test -bench` outputs from the SAME machine — one forced
// onto the portable Go kernels (REX_VEC=go), one on the dispatched SIMD
// path — and fails if any gated benchmark's measured speedup falls more
// than the baseline tolerance below the ratio recorded in BENCH_vec.json.
//
// Gating on the speedup *ratio* rather than absolute ns/op is deliberate:
// CI runners vary wildly in clock speed and contention, so an absolute
// ceiling either flakes or is too loose to catch anything. The ratio of
// two interleaved runs on the same box cancels the machine out and
// isolates exactly what this repo controls — the quality of the SIMD
// kernels relative to the reference loops.
//
// Usage:
//
//	go test -run '^$' -bench ... -count 3 ./internal/vec .  (REX_VEC=go)   > slow.txt
//	go test -run '^$' -bench ... -count 3 ./internal/vec .  (dispatched)   > fast.txt
//	go run ./cmd/benchgate -baseline BENCH_vec.json -slow slow.txt -fast fast.txt
//
// The minimum ns/op across -count repetitions is used on both sides,
// which discards scheduler hiccups instead of averaging them in.
//
// A second mode gates the delta wire encoder instead of the SIMD kernels:
//
//	go test -run '^$' -bench BenchmarkClusterEpoch -benchtime 5x . > wire.txt
//	go run ./cmd/benchgate -wire wire.txt -wirefloor 3.0
//
// compares the wireB/epoch metric of the -fullwire cluster variants
// against their delta-default twins and fails if the saving ratio drops
// below the floor. Same philosophy: both sides come from one run of one
// binary, so the quotient isolates the encoder.
//
// A third mode gates the scale path's memory footprint:
//
//	go run ./cmd/rexbench -scale -scale-users 50000 -scale-out scale_meas.json
//	go run ./cmd/benchgate -scale scale_meas.json -scalebase BENCH_scale.json
//
// compares the measured bytes-per-user (post-GC live heap of a resident
// simulation divided by node count) against the committed BENCH_scale.json
// curve and fails when any size present in both exceeds the recorded value
// by more than the baseline's tolerance. Live heap per user is a property
// of the data structures, not the machine, so unlike wall-clock it gates
// cleanly across CI runners.
//
// A fourth mode gates load-workload reports structurally:
//
//	go run ./cmd/rexbench -load zipf-burst -load-out load_meas.json
//	go run ./cmd/benchgate -load load_meas.json
//
// checks that the report is complete and self-consistent — events were
// dispatched, both endpoints saw traffic, every latency summary has
// positive, monotone percentiles (p50 ≤ p95 ≤ p99 ≤ ...), the server-side
// scrape is present with sane counts, the non-2xx fraction stays under
// -loaderr, and the pipeline stage histograms are populated. No absolute
// latency is gated (wall-clock varies per runner); the gate catches the
// failure modes this repo controls: a broken /metrics scrape, a schedule
// that generated nothing, or handlers rejecting valid traffic.
//
// A fifth mode gates chaos-load reports:
//
//	go run ./cmd/rexbench -load flashcrowd -scenario lossy -chaos-out chaos_meas.json
//	go run ./cmd/benchgate -chaosload chaos_meas.json
//
// runs the load gate's structural checks (with the error-fraction bound
// waived — shedding is the point of the run) plus the chaos invariants:
// the dispatched schedule digest equals the fault-free digest, every
// acked rating survived into the final snapshots (no accept-then-lose),
// the shed count is nonzero but the shed fraction bounded, nothing was
// rejected 400, and the injected scenario actually fired.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	Note      string   `json:"note"`
	Recorded  string   `json:"recorded"`
	Tolerance float64  `json:"tolerance"`
	Kernels   []kernel `json:"kernels"`
}

type kernel struct {
	Bench string `json:"bench"`
	// Recorded ns/op per forced path on the reference machine —
	// documentation of the before/after, not used by the gate.
	GoNs   float64 `json:"go_ns"`
	SSE2Ns float64 `json:"sse2_ns,omitempty"`
	AVX2Ns float64 `json:"avx2_ns"`
	// MinSpeedup is the gated floor: dispatched-path speedup over the
	// forced-go path must stay above MinSpeedup*(1-Tolerance).
	MinSpeedup float64 `json:"min_speedup_vs_go"`
	Gate       bool    `json:"gate"`
}

// metricLine matches one `go test -bench` result line carrying the given
// unit (ns/op, wireB/epoch, ...) and captures the benchmark name (CPU-count
// suffix stripped) and the metric value.
func metricLine(unit string) *regexp.Regexp {
	return regexp.MustCompile(`^(Benchmark[^\s-]+(?:/[^\s]+?)?)(?:-\d+)?\s+\d+\s.*?([0-9.]+(?:e[+-]?[0-9]+)?) ` +
		regexp.QuoteMeta(unit))
}

// parseBench returns the minimum value of one metric per benchmark name
// across all repetitions in a `go test -bench` output.
func parseBench(path, unit string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	re := metricLine(unit)
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := re.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || v < prev {
			out[m[1]] = v
		}
	}
	return out, sc.Err()
}

// wireGate checks the delta-wire saving: in one bench output holding all
// four BenchmarkClusterEpoch variants, the -fullwire wireB/epoch divided
// by the delta-default wireB/epoch must stay at or above the floor for
// both the native and secure clusters. Like the SIMD gate this is a
// same-run ratio — the workload is identical on both sides, so the only
// thing the quotient can measure is the encoder.
func wireGate(path string, floor float64) bool {
	wire, err := parseBench(path, "wireB/epoch")
	if err != nil {
		fatal(err)
	}
	failed := false
	fmt.Printf("%-34s %14s %14s %9s %9s  %s\n", "cluster", "full B/epoch", "delta B/epoch", "ratio", "floor", "verdict")
	for _, mode := range []string{"native", "secure"} {
		name := "BenchmarkClusterEpoch/" + mode
		full, okF := wire[name+"-fullwire"]
		delta, okD := wire[name]
		if !okF || !okD || delta == 0 {
			fmt.Printf("%-34s missing wireB/epoch (full=%v delta=%v)\n", name, okF, okD)
			failed = true
			continue
		}
		ratio := full / delta
		verdict := "ok"
		if ratio < floor {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-34s %14.0f %14.0f %8.2fx %8.2fx  %s\n", name, full, delta, ratio, floor, verdict)
	}
	return failed
}

// scaleReport mirrors internal/experiments.ScaleReport (decoded
// structurally so the gate binary stays decoupled from the experiment
// package's evolution).
type scaleReport struct {
	Tolerance float64 `json:"tolerance"`
	Points    []struct {
		Users        int     `json:"users"`
		BytesPerUser float64 `json:"bytes_per_user"`
	} `json:"points"`
}

func readScale(path string) (*scaleReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r scaleReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// loadSummary / loadEndpoint / loadReport mirror the BENCH_load.json
// schema (internal/loadgen.Report), decoded structurally so the gate
// binary stays decoupled from the loadgen package's evolution. JSON
// numeric map keys arrive as strings, hence Statuses map[string]uint64.
type loadSummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

type loadEndpoint struct {
	loadSummary
	Statuses map[string]uint64 `json:"statuses"`
}

type loadReport struct {
	Mode           string                  `json:"mode"`
	Events         uint64                  `json:"events"`
	EventsPerSec   float64                 `json:"events_per_sec"`
	ScheduleDigest string                  `json:"schedule_digest"`
	Client         map[string]loadEndpoint `json:"client"`
	Server         map[string]loadEndpoint `json:"server"`
	Stages         map[string]loadSummary  `json:"stages"`
}

// checkSummary verifies one latency summary is populated and internally
// consistent: a positive count, positive percentiles, and monotone
// quantiles. Returns a problem description or "".
func checkSummary(s loadSummary) string {
	if s.Count == 0 {
		return "empty (count 0)"
	}
	if !(s.P50Ms > 0) || !(s.MeanMs > 0) {
		return fmt.Sprintf("non-positive latency (p50=%v mean=%v)", s.P50Ms, s.MeanMs)
	}
	if s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms {
		return fmt.Sprintf("percentiles not monotone (%v / %v / %v)", s.P50Ms, s.P95Ms, s.P99Ms)
	}
	return ""
}

// loadGate fails when a BENCH_load.json report is incomplete or
// self-inconsistent. It is structural on purpose: absolute latency
// depends on the runner, but "the run produced events, both endpoints
// answered, /metrics was scraped, and the histograms are sane" does not.
func loadGate(path string, maxErrFrac float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	return gateLoadStruct(&rep, maxErrFrac)
}

// gateLoadStruct runs the structural checks shared by -load and
// -chaosload. maxErrFrac bounds the non-2xx response fraction; chaos
// runs pass 1 (sheds are expected there and gated separately).
func gateLoadStruct(rep *loadReport, maxErrFrac float64) bool {
	failed := false
	check := func(what, problem string) {
		verdict := "ok"
		if problem != "" {
			verdict = "FAIL: " + problem
			failed = true
		}
		fmt.Printf("%-28s %s\n", what, verdict)
	}

	eventsProblem := ""
	if rep.Events == 0 || rep.EventsPerSec <= 0 {
		eventsProblem = fmt.Sprintf("events=%d rate=%.0f/s", rep.Events, rep.EventsPerSec)
	}
	check("events dispatched", eventsProblem)
	digestProblem := ""
	if len(rep.ScheduleDigest) != 16 || rep.ScheduleDigest == "0000000000000000" {
		digestProblem = fmt.Sprintf("%q", rep.ScheduleDigest)
	}
	check("schedule digest", digestProblem)

	var total, errs uint64
	for _, ep := range []string{"rate", "recommend"} {
		cl, ok := rep.Client[ep]
		if !ok {
			check("client "+ep, "missing from report")
			continue
		}
		check("client "+ep, checkSummary(cl.loadSummary))
		for code, n := range cl.Statuses {
			total += n
			if len(code) != 3 || code[0] != '2' {
				errs += n
			}
		}
		sv, ok := rep.Server[ep]
		if !ok {
			check("server "+ep, "missing: /metrics scrape absent")
			continue
		}
		check("server "+ep, checkSummary(sv.loadSummary))
		if sv.Count > cl.Count {
			check("server "+ep+" count", fmt.Sprintf("server saw %d > client sent %d", sv.Count, cl.Count))
		}
	}
	if total > 0 {
		frac := float64(errs) / float64(total)
		problem := ""
		if frac > maxErrFrac {
			problem = fmt.Sprintf("%.1f%% non-2xx responses (max %.1f%%)", frac*100, maxErrFrac*100)
		}
		check("error fraction", problem)
	}

	if len(rep.Stages) == 0 {
		check("pipeline stages", "missing: no stage histograms in report")
	} else {
		for _, name := range []string{"train", "merge"} {
			st, ok := rep.Stages[name]
			if !ok {
				check("stage "+name, "missing")
				continue
			}
			check("stage "+name, checkSummary(st))
		}
	}
	return failed
}

// chaosReport mirrors the BENCH_chaosload.json schema
// (internal/experiments.ChaosLoadReport), decoded structurally.
type chaosReport struct {
	Scenario        string           `json:"scenario"`
	FaultFreeDigest string           `json:"fault_free_digest"`
	AckedRatings    uint64           `json:"acked_ratings"`
	AckedSurvived   uint64           `json:"acked_survived"`
	AckedLost       uint64           `json:"acked_lost"`
	ShedFraction    float64          `json:"shed_fraction"`
	Faults          map[string]int64 `json:"faults"`
	Outcomes        struct {
		Accepted  uint64 `json:"accepted"`
		RetriedOK uint64 `json:"retried_ok"`
		Shed      uint64 `json:"shed"`
		Rejected  uint64 `json:"rejected"`
		Failed    uint64 `json:"failed"`
		Retries   uint64 `json:"retries"`
	} `json:"outcomes"`
	loadReport
}

// chaosGate gates a BENCH_chaosload.json report: the structural checks of
// the load gate (with the error-fraction bound waived — shedding is the
// point) plus the chaos invariants. Two are absolute: the dispatched
// schedule digest must equal the fault-free digest (faults degrade
// delivery, never the workload), and no acked rating may be missing from
// the final snapshots (accept-then-lose would make a 200 a lie). The
// rest bound graceful degradation: sheds happened but stayed under
// maxShed of the total, nothing was rejected 400 (the catalog preflight
// guarantees valid traffic), and the injected scenario really fired.
func chaosGate(path string, maxShed float64, minShed uint64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep chaosReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}

	failed := gateLoadStruct(&rep.loadReport, 1)
	check := func(what, problem string) {
		verdict := "ok"
		if problem != "" {
			verdict = "FAIL: " + problem
			failed = true
		}
		fmt.Printf("%-28s %s\n", what, verdict)
	}

	digestProblem := ""
	if rep.FaultFreeDigest != rep.ScheduleDigest {
		digestProblem = fmt.Sprintf("dispatched %q != fault-free %q — faults perturbed the workload",
			rep.ScheduleDigest, rep.FaultFreeDigest)
	}
	check("digest vs fault-free", digestProblem)

	ackProblem := ""
	switch {
	case rep.AckedRatings == 0:
		ackProblem = "no acked ratings recorded"
	case rep.AckedLost != 0:
		ackProblem = fmt.Sprintf("%d acked ratings lost (accept-then-lose)", rep.AckedLost)
	case rep.AckedSurvived != rep.AckedRatings:
		ackProblem = fmt.Sprintf("survived %d != acked %d but lost 0 (inconsistent report)",
			rep.AckedSurvived, rep.AckedRatings)
	}
	check("acked-rating survival", ackProblem)

	o := rep.Outcomes
	totalProblem := ""
	if sum := o.Accepted + o.RetriedOK + o.Shed + o.Rejected + o.Failed; sum != rep.Events {
		totalProblem = fmt.Sprintf("outcomes sum %d != events %d", sum, rep.Events)
	}
	check("outcome accounting", totalProblem)

	shedProblem := ""
	if o.Shed < minShed {
		shedProblem = fmt.Sprintf("%d sheds, want >= %d (admission gates never fired)", o.Shed, minShed)
	} else if rep.ShedFraction > maxShed {
		shedProblem = fmt.Sprintf("shed fraction %.2f above the %.2f bound (admission over-shedding)",
			rep.ShedFraction, maxShed)
	}
	check("shed bounded", shedProblem)

	rejProblem := ""
	if o.Rejected != 0 {
		rejProblem = fmt.Sprintf("%d events rejected 400 — the catalog preflight should make this impossible", o.Rejected)
	}
	check("no validation rejects", rejProblem)

	// Transport failures should be rare on a local/CI cluster even under
	// chaos (faults hit gossip links, not the serving sockets); tolerate
	// noise but catch a broken target.
	failProblem := ""
	if rep.Events > 0 && float64(o.Failed)/float64(rep.Events) > 0.02 {
		failProblem = fmt.Sprintf("%d of %d events failed outright", o.Failed, rep.Events)
	}
	check("transport failures", failProblem)

	if rep.Scenario != "" {
		var injected int64
		for _, n := range rep.Faults {
			injected += n
		}
		faultProblem := ""
		if injected == 0 {
			faultProblem = fmt.Sprintf("scenario %q injected zero faults", rep.Scenario)
		}
		check("faults injected", faultProblem)
	}
	return failed
}

// scaleGate fails when a fresh measurement's bytes-per-user exceeds the
// committed baseline by more than the baseline's tolerance at any size
// present in both files. Sizes only one side measured are reported but
// not gated, so CI can run a single-size smoke against the full curve.
func scaleGate(measPath, basePath string) bool {
	meas, err := readScale(measPath)
	if err != nil {
		fatal(err)
	}
	base, err := readScale(basePath)
	if err != nil {
		fatal(err)
	}
	tol := base.Tolerance
	if tol <= 0 {
		tol = 0.5
	}
	baseline := make(map[int]float64, len(base.Points))
	for _, p := range base.Points {
		baseline[p.Users] = p.BytesPerUser
	}
	failed := false
	gated := 0
	fmt.Printf("%12s %14s %14s %14s  %s\n", "users", "measured B/u", "recorded B/u", "ceiling", "verdict")
	for _, p := range meas.Points {
		rec, ok := baseline[p.Users]
		if !ok {
			fmt.Printf("%12d %14.0f %14s %14s  not in baseline (ungated)\n", p.Users, p.BytesPerUser, "-", "-")
			continue
		}
		gated++
		ceiling := rec * (1 + tol)
		verdict := "ok"
		if p.BytesPerUser > ceiling {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%12d %14.0f %14.0f %14.0f  %s\n", p.Users, p.BytesPerUser, rec, ceiling, verdict)
	}
	if gated == 0 {
		fmt.Println("benchgate: no measured size matches the baseline curve")
		return true
	}
	return failed
}

func main() {
	basePath := flag.String("baseline", "BENCH_vec.json", "baseline JSON with gated speedup floors")
	slowPath := flag.String("slow", "", "bench output of the REX_VEC=go run")
	fastPath := flag.String("fast", "", "bench output of the dispatched run")
	wirePath := flag.String("wire", "", "bench output holding BenchmarkClusterEpoch (delta + fullwire variants); gates the wire-byte ratio instead of the SIMD speedup")
	wireFloor := flag.Float64("wirefloor", 3.0, "minimum fullwire/delta wireB/epoch ratio")
	scalePath := flag.String("scale", "", "fresh rexbench -scale-out JSON; gates bytes-per-user against -scalebase")
	scaleBase := flag.String("scalebase", "BENCH_scale.json", "committed scale baseline JSON")
	loadPath := flag.String("load", "", "rexbench -load-out JSON (BENCH_load.json schema); gates the report's structural completeness")
	loadErr := flag.Float64("loaderr", 0.01, "maximum non-2xx response fraction for -load")
	chaosPath := flag.String("chaosload", "", "rexbench -chaos-out JSON (BENCH_chaosload.json schema); gates chaos invariants (digest equality, acked-rating survival, bounded shed)")
	chaosMaxShed := flag.Float64("chaosmaxshed", 0.75, "maximum shed fraction for -chaosload")
	chaosMinShed := flag.Uint64("chaosminshed", 1, "minimum shed count for -chaosload (proves the admission gates fired)")
	flag.Parse()
	if *chaosPath != "" {
		if chaosGate(*chaosPath, *chaosMaxShed, *chaosMinShed) {
			fmt.Fprintln(os.Stderr, "benchgate: chaos-load report violates an invariant")
			os.Exit(1)
		}
		return
	}
	if *loadPath != "" {
		if loadGate(*loadPath, *loadErr) {
			fmt.Fprintln(os.Stderr, "benchgate: load report incomplete or inconsistent")
			os.Exit(1)
		}
		return
	}
	if *scalePath != "" {
		if scaleGate(*scalePath, *scaleBase) {
			fmt.Fprintln(os.Stderr, "benchgate: scale bytes-per-user regressed above the recorded baseline")
			os.Exit(1)
		}
		return
	}
	if *wirePath != "" {
		if wireGate(*wirePath, *wireFloor) {
			fmt.Fprintln(os.Stderr, "benchgate: delta wire saving regressed below the floor")
			os.Exit(1)
		}
		return
	}
	if *slowPath == "" || *fastPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -slow and -fast are required (or -wire for the wire-byte gate)")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	slow, err := parseBench(*slowPath, "ns/op")
	if err != nil {
		fatal(err)
	}
	fast, err := parseBench(*fastPath, "ns/op")
	if err != nil {
		fatal(err)
	}

	failed := false
	fmt.Printf("%-34s %12s %12s %9s %9s  %s\n", "benchmark", "go ns/op", "simd ns/op", "speedup", "floor", "verdict")
	for _, k := range base.Kernels {
		s, okS := slow[k.Bench]
		f, okF := fast[k.Bench]
		if !okS || !okF {
			if k.Gate {
				fmt.Printf("%-34s missing from bench output (slow=%v fast=%v)\n", k.Bench, okS, okF)
				failed = true
			}
			continue
		}
		speedup := s / f
		floor := k.MinSpeedup * (1 - base.Tolerance)
		verdict := "ok"
		if !k.Gate {
			verdict = "recorded (ungated)"
		} else if speedup < floor {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-34s %12.2f %12.2f %8.2fx %8.2fx  %s\n", k.Bench, s, f, speedup, floor, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: SIMD speedup regressed below the recorded baseline")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
