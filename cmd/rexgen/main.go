// Command rexgen generates synthetic MovieLens-shaped datasets (Table I)
// and prints their statistics, optionally writing ratings.csv-compatible
// output for use with other tooling.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"rex/internal/movielens"
)

func main() {
	var (
		preset = flag.String("preset", "latest", "dataset preset: latest or 25m")
		scale  = flag.Float64("scale", 1.0, "scale factor applied to users/items/ratings")
		seed   = flag.Int64("seed", 1, "generation seed")
		out    = flag.String("o", "", "write ratings CSV to this path (default: stats only)")
	)
	flag.Parse()

	var spec movielens.Spec
	switch *preset {
	case "latest":
		spec = movielens.Latest()
	case "25m":
		spec = movielens.TwentyFiveMCapped()
	default:
		log.Fatalf("rexgen: unknown preset %q (want latest or 25m)", *preset)
	}
	if *scale != 1.0 {
		spec = spec.Scaled(*scale)
	}
	spec.Seed = *seed

	ds := movielens.Generate(spec)
	st := movielens.Summarize(ds)
	fmt.Printf("ratings=%d users=%d items=%d mean=%.2f density=%.4f maxUser=%d maxItem=%d\n",
		st.Ratings, st.Users, st.Items, st.MeanRating, st.Density, st.MaxUserDegree, st.MaxItemDegree)

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("rexgen: %v", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "userId,movieId,rating,timestamp")
	for _, r := range ds.Ratings {
		// 1-based ids and a fixed timestamp, matching the MovieLens CSV shape.
		fmt.Fprintf(w, "%d,%d,%g,0\n", r.User+1, r.Item+1, r.Value)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("rexgen: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("rexgen: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}
