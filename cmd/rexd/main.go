// Command rexd runs one REX node as a long-running daemon: the training
// loop of rexnode restructured around runtime.Engine, with snapshot
// persistence (internal/store) and an HTTP serving path (internal/serve)
// attached. Where rexnode trains for -epochs and exits, rexd trains in
// generations, persists a snapshot after each one, serves /recommend from
// the latest published snapshot the whole time, and keeps going until a
// drain (SIGTERM, SIGINT or POST /drain) or -generations runs out.
//
// Example 2-node daemon cluster (two shells):
//
//	rexd -id 0 -nodes 127.0.0.1:7800,127.0.0.1:7801 -http 127.0.0.1:8800 -data /tmp/rexd0
//	rexd -id 1 -nodes 127.0.0.1:7800,127.0.0.1:7801 -http 127.0.0.1:8801 -data /tmp/rexd1
//
// then POST ratings to /rate, query /recommend?user=U&n=N (add &model=knn
// to rank with user-based KNN over the node's raw-data store), watch
// /status, and stop with POST /drain — the daemon finishes its epoch,
// persists a final snapshot, and exits 0.
//
// Crash recovery: kill -9 a node, restart it with the same flags plus
// -resume, and it reloads the last persisted snapshot, replays its rating
// WAL, and rejoins the still-running cluster mid-gossip — peers readmit it
// through the failure detector's rejoin path (gossip is rate-synchronized,
// not epoch-stamped, so the resumed node's older epoch counter is fine).
//
// Resume is a plaintext-mode feature: secure mode has no re-attestation
// path (a fresh enclave cannot rejoin sessions attested before the crash),
// so -secure is rejected together with -resume, and rexd defaults to the
// native build. Secure daemons work when the whole cluster starts fresh.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/metrics"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
	"rex/internal/serve"
	"rex/internal/store"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this node's index into -nodes")
		nodes      = flag.String("nodes", "", "comma-separated host:port of every node's gossip address, in id order")
		httpAddr   = flag.String("http", "", "HTTP serving address (e.g. 127.0.0.1:8800)")
		dataDir    = flag.String("data", "", "persistence directory (snapshots + rating WAL); empty = no persistence")
		resume     = flag.Bool("resume", false, "restore model/store/epoch from the last snapshot in -data and rejoin the cluster")
		gens       = flag.Int("generations", 0, "stop after this many generations; 0 = run until drained")
		genEpochs  = flag.Int("gen-epochs", 5, "training epochs per generation (one snapshot per generation)")
		modeStr    = flag.String("mode", "rex", "sharing mode: rex (raw data) or ms (model parameters)")
		algoStr    = flag.String("algo", "dpsgd", "dissemination: dpsgd or rmw")
		secure     = flag.Bool("secure", false, "attest peers and encrypt gossip; incompatible with -resume")
		wireStr    = flag.String("wire", "delta", "gossip wire encoding: delta (per-peer delta frames) or full (flat frames)")
		seed       = flag.Int64("seed", 1, "shared dataset/partition seed (must match across the cluster)")
		scale      = flag.Float64("scale", 0.1, "MovieLens-Latest scale factor for the synthetic dataset")
		points     = flag.Int("share", 100, "raw data points shared per epoch")
		steps      = flag.Int("steps", 300, "SGD steps per epoch")
		roundTO    = flag.Duration("round-timeout", 5*time.Second, "max wait per neighbor per gossip round before counting a miss")
		grace      = flag.Int("peer-grace", 3, "consecutive missed rounds before a peer is dropped (rejoin stays possible)")
		scenario   = flag.String("scenario", "", "chaos scenario (canned name or JSON file): wrap this node's gossip endpoint with the seeded fault schedule; every node of the cluster must be given the same scenario")
		rateLimit  = flag.Float64("rate-limit", 0, "admission: token-bucket rate for POST /rate in requests/sec; over-limit requests are shed 429 before any WAL write (0 = unlimited)")
		rateBurst  = flag.Int("rate-burst", 0, "admission: token-bucket capacity (0 = ceil(rate-limit))")
		ingQueue   = flag.Int("ingest-queue", 0, "admission: max concurrent /rate requests inside the WAL+ingest section; excess is shed 429 (0 = unbounded)")
		maxSnapAge = flag.Duration("max-snapshot-age", 0, "admission: shed GET /recommend 503 when the served snapshot hasn't advanced for this long (0 = never)")
	)
	flag.Parse()
	if err := run(daemonOpts{
		id: *id, nodes: *nodes, httpAddr: *httpAddr, dataDir: *dataDir,
		resume: *resume, generations: *gens, genEpochs: *genEpochs,
		modeStr: *modeStr, algoStr: *algoStr, secure: *secure, wireStr: *wireStr,
		seed: *seed, scale: *scale, points: *points, steps: *steps,
		roundTimeout: *roundTO, peerGrace: *grace,
		scenario: *scenario, rateLimit: *rateLimit, rateBurst: *rateBurst,
		ingestQueue: *ingQueue, maxSnapshotAge: *maxSnapAge,
	}); err != nil {
		log.Fatalf("rexd: %v", err)
	}
}

type daemonOpts struct {
	id           int
	nodes        string
	httpAddr     string
	dataDir      string
	resume       bool
	generations  int
	genEpochs    int
	modeStr      string
	algoStr      string
	secure       bool
	wireStr      string
	seed         int64
	scale        float64
	points       int
	steps        int
	roundTimeout time.Duration
	peerGrace    int

	scenario       string
	rateLimit      float64
	rateBurst      int
	ingestQueue    int
	maxSnapshotAge time.Duration
}

func run(o daemonOpts) error {
	mode, err := core.ParseMode(o.modeStr)
	if err != nil {
		return err
	}
	algo, err := gossip.ParseAlgo(o.algoStr)
	if err != nil {
		return err
	}
	wire, err := runtime.ParseWireMode(o.wireStr)
	if err != nil {
		return err
	}
	if o.secure && o.resume {
		return fmt.Errorf("-resume needs -secure=false: there is no re-attestation path into a running secure cluster")
	}
	if o.genEpochs <= 0 {
		return fmt.Errorf("-gen-epochs must be positive")
	}
	addrs := strings.Split(o.nodes, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("-nodes needs at least two addresses")
	}
	if o.id < 0 || o.id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d nodes", o.id, len(addrs))
	}
	n := len(addrs)

	// Deterministic shared workload: every daemon derives the full dataset
	// and takes its own partition, exactly like rexnode.
	spec := movielens.Latest().Scaled(o.scale)
	spec.Seed = o.seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(o.seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return fmt.Errorf("partitioning: %w", err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return fmt.Errorf("partitioning: %w", err)
	}
	mcfg := mf.DefaultConfig()
	ncfg := core.Config{
		ID: o.id, Mode: mode, Algo: algo,
		StepsPerEpoch: o.steps, SharePoints: o.points, Seed: o.seed,
	}

	// Persistence: open the data dir first so a -resume failure is caught
	// before any network activity.
	var dir *store.Dir
	var dirMu sync.Mutex // serializes WAL appends (HTTP) vs snapshots (loop)
	if o.dataDir != "" {
		dir, err = store.Open(o.dataDir)
		if err != nil {
			return err
		}
		defer dir.Close()
	}

	node := core.NewNode(ncfg, mf.New(mcfg), trainParts[o.id], testParts[o.id])
	startEpoch := 0
	resumed := false
	if o.resume {
		if dir == nil {
			return fmt.Errorf("-resume needs -data")
		}
		snap, replayed, err := dir.Load()
		if err != nil {
			return fmt.Errorf("loading %s: %w", o.dataDir, err)
		}
		if snap == nil {
			log.Printf("node %d: -resume with empty %s, starting fresh", o.id, o.dataDir)
		} else {
			m := mf.New(mcfg)
			if err := m.Unmarshal(snap.Model); err != nil {
				return fmt.Errorf("restoring model: %w", err)
			}
			node = core.RestoreNode(ncfg, m, snap.Ratings, testParts[o.id], snap.Epoch)
			if len(replayed) > 0 {
				node.Store.Append(replayed)
			}
			startEpoch = snap.Epoch
			resumed = true
			log.Printf("node %d: resumed at epoch %d (%d snapshot ratings, %d WAL ratings replayed)",
				o.id, snap.Epoch, len(snap.Ratings), len(replayed))
		}
	}

	peers := make(map[int]string, n)
	var neighbors []int
	for i, a := range addrs {
		if i == o.id {
			continue
		}
		peers[i] = a
		neighbors = append(neighbors, i)
	}
	ep, err := runtime.NewTCPNet(o.id, addrs[o.id], peers)
	if err != nil {
		return err
	}
	// gossipEP tracks the endpoint actually handed to the engine: a
	// -scenario wraps ep with the fault injector, and closing the wrapper
	// (which flushes stashed frames, then closes ep) is the right
	// shutdown either way.
	gossipEP := runtime.Endpoint(ep)
	defer func() { gossipEP.Close() }()

	var sc *faultnet.Scenario
	var faultLog *faultnet.Log
	if o.scenario != "" {
		sc, err = faultnet.Resolve(o.scenario)
		if err != nil {
			return err
		}
		faultLog = &faultnet.Log{}
		log.Printf("node %d: chaos scenario %q (seed %d): drop=%.2f delay=%.2f dup=%.2f reorder=%.2f partitions=%d churn=%d",
			o.id, sc.Name, sc.Seed, sc.Drop, sc.Delay, sc.Duplicate, sc.Reorder, len(sc.Partitions), len(sc.Churn))
	}

	// Stage histograms for /metrics: OnEpoch runs on the protocol thread
	// right after each Step — the one place Stats may be read — so the
	// per-epoch stage durations are the deltas of the cumulative counters
	// between consecutive epochs.
	stages := metrics.NewStageSet()
	var engine *runtime.Engine
	var prevStats runtime.Stats
	cfg := runtime.Config{
		Node: node, Endpoint: ep, Neighbors: neighbors,
		Secure:     o.secure,
		Wire:       wire,
		NewModel:   func() model.Model { return mf.New(mcfg) },
		StartEpoch: startEpoch,
		Publish:    true,
		// A daemon must survive peer restarts: time out slow rounds, drop
		// after a grace window, and readmit peers that come back — this is
		// what lets a killed node -resume into a live cluster.
		RoundTimeout: o.roundTimeout,
		PeerGrace:    o.peerGrace,
		Rejoin:       true,
		OnEpoch: func(e int, rmse float64) {
			log.Printf("node %d epoch %3d: local test RMSE %.4f", o.id, e, rmse)
			if engine == nil {
				return
			}
			st := *engine.Stats()
			stages.Observe("train", st.Train-prevStats.Train)
			stages.Observe("merge", st.Merge-prevStats.Merge)
			stages.Observe("share", st.Share-prevStats.Share)
			stages.Observe("seal", st.Seal-prevStats.Seal)
			stages.Observe("wire", st.Wire-prevStats.Wire)
			prevStats = st
		},
	}
	if sc != nil {
		// Wraps cfg.Endpoint with the fault injector and applies the
		// scenario's failure-detector knobs (timeout/grace/rejoin).
		sc.ApplyRun(&cfg, faultLog)
		gossipEP = cfg.Endpoint
	}
	if o.secure {
		inf := attest.NewInfrastructure()
		entropy := rand.New(rand.NewSource(o.seed))
		platforms := make([]*attest.Platform, n)
		for i := 0; i < n; i++ {
			p, err := inf.NewPlatform(entropy)
			if err != nil {
				return fmt.Errorf("platform: %w", err)
			}
			platforms[i] = p
		}
		cfg.Platform = platforms[o.id]
		cfg.Infra = inf
		cfg.Measurement = attest.MeasureCode([]byte("rex-enclave-v1"))
		cfg.Entropy = rand.New(rand.NewSource(o.seed + int64(o.id) + 1000))
	}

	engine, err = runtime.NewEngine(cfg)
	if err != nil {
		return err
	}
	if err := engine.Start(); err != nil {
		return err
	}
	defer engine.Stop()

	// Drains: SIGTERM/SIGINT and POST /drain both set the engine flag; the
	// loop below notices between epochs, finishes the current one cleanly,
	// persists a final snapshot, and closes drained.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("node %d: %v, draining", o.id, s)
		engine.Drain()
	}()

	// generation is read by /status handlers while the loop increments it.
	var generation atomic.Int64
	// drainErr is written before drained closes (that close is the /drain
	// waiters' happens-before edge), so handlers read it safely after.
	var drainErr error
	drained := make(chan struct{})
	var httpSrv *http.Server
	if o.httpAddr != "" {
		srv, err := serve.New(serve.Config{
			Node: engine, ID: o.id, NumItems: ds.NumItems,
			Stages: stages,
			Admission: serve.AdmissionConfig{
				RatePerSec:     o.rateLimit,
				Burst:          o.rateBurst,
				QueueDepth:     o.ingestQueue,
				MaxSnapshotAge: o.maxSnapshotAge,
			},
			OnRate: func(rs []dataset.Rating) error {
				if dir == nil {
					return nil
				}
				dirMu.Lock()
				defer dirMu.Unlock()
				return dir.Append(rs)
			},
			Drained:  drained,
			DrainErr: func() error { return drainErr },
			Extra: func() map[string]any {
				m := map[string]any{
					"generation": generation.Load(),
					"data_dir":   o.dataDir,
					"resumed":    resumed,
				}
				if faultLog != nil {
					c := faultLog.Counts()
					m["scenario"] = sc.Name
					m["faults"] = map[string]int64{
						"dropped":         c.Dropped,
						"delayed":         c.Delayed,
						"duplicated":      c.Duplicated,
						"reordered":       c.Reordered,
						"partition_drops": c.PartitionDrops,
						"leaves":          c.Leaves,
						"rejoins":         c.Rejoins,
					}
				}
				return m
			},
		})
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Addr: o.httpAddr, Handler: srv.Handler()}
		go func() {
			log.Printf("node %d: serving on http://%s", o.id, o.httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("node %d: http: %v", o.id, err)
				engine.Drain()
			}
		}()
	}

	persist := func() error {
		if dir == nil {
			return nil
		}
		snap := engine.Snapshot()
		if snap == nil {
			return nil
		}
		rmse := snap.RMSE
		if math.IsNaN(rmse) {
			rmse = -1
		}
		dirMu.Lock()
		defer dirMu.Unlock()
		return dir.SaveSnapshot(snap.Epoch, rmse, snap.Model, snap.Ratings)
	}

	// The generation loop: train gen-epochs epochs, persist, repeat. The
	// serving path reads published snapshots concurrently the whole time.
	var loopErr error
	for !engine.Draining() && (o.generations == 0 || generation.Load() < int64(o.generations)) {
		for k := 0; k < o.genEpochs && !engine.Draining(); k++ {
			if _, err := engine.Step(); err != nil {
				loopErr = err
				break
			}
		}
		gen := generation.Add(1)
		if loopErr != nil {
			break
		}
		if err := persist(); err != nil {
			loopErr = fmt.Errorf("persisting generation %d: %w", gen, err)
			break
		}
		log.Printf("node %d: generation %d done (epoch %d persisted)", o.id, gen, engine.Epoch())
	}
	engine.Drain() // reflect the stop in /status for late observers
	if loopErr == nil {
		if err := persist(); err != nil {
			loopErr = fmt.Errorf("final snapshot: %w", err)
		}
	}
	engine.Stop()
	drainErr = loopErr
	close(drained)
	if httpSrv != nil {
		// Let in-flight handlers (notably /drain waiters) finish.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}
	if loopErr != nil {
		return loopErr
	}
	st := engine.Stats()
	saved := st.WireRawBytes - st.BytesOnWire
	if saved < 0 {
		saved = 0
	}
	log.Printf("node %d drained at epoch %d: final RMSE %.6f | in %d B out %d B wire %d B | delta saved %d B refs %d explicit %d resyncs %d | lost %d rejoined %d",
		o.id, engine.Epoch(), st.FinalRMSE, st.BytesIn, st.BytesOut, st.BytesOnWire,
		saved, st.DeltaRefs, st.DeltaExplicit, st.Resyncs, st.PeersLost, st.Rejoins)
	return nil
}
