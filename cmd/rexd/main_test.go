package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rex/internal/dataset"
	"rex/internal/mf"
	"rex/internal/rank"
	"rex/internal/store"
)

// rexdBin builds the daemon binary once per test process, preferring a
// race-instrumented build (the HTTP handlers race the training loop by
// construction); tests that exec it share the artifact.
var rexdBin struct {
	once sync.Once
	path string
	err  error
}

func buildRexd(t *testing.T) string {
	t.Helper()
	rexdBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "rexdbin")
		if err != nil {
			rexdBin.err = err
			return
		}
		bin := filepath.Join(dir, "rexd")
		if out, err := exec.Command("go", "build", "-race", "-o", bin, "rex/cmd/rexd").CombinedOutput(); err != nil {
			if out2, err2 := exec.Command("go", "build", "-o", bin, "rex/cmd/rexd").CombinedOutput(); err2 != nil {
				rexdBin.err = fmt.Errorf("cannot build rexd: %v\n%s\n%s", err2, out, out2)
				return
			}
		}
		rexdBin.path = bin
	})
	if rexdBin.err != nil {
		t.Skipf("%v", rexdBin.err)
	}
	return rexdBin.path
}

// freePorts reserves n distinct localhost TCP ports. The listeners are
// closed before returning, so a parallel process could in principle steal
// one — acceptable in tests.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

var client = &http.Client{Timeout: 10 * time.Second}

func getJSON(addr, path string, out any) (int, error) {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// waitStatus polls /status until ok(status) or the deadline.
func waitStatus(t *testing.T, addr, what string, ok func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		var st map[string]any
		if code, err := getJSON(addr, "/status", &st); err == nil && code == http.StatusOK {
			last = st
			if ok(st) {
				return st
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on %s (last status: %v)", what, addr, last)
	return nil
}

func num(st map[string]any, key string) float64 {
	v, _ := st[key].(float64)
	return v
}

type daemon struct {
	cmd *exec.Cmd
	out bytes.Buffer
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...)}
	d.cmd.Stdout = &d.out
	d.cmd.Stderr = &d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonClusterServeResumeRejoin is the rexd acceptance path from the
// issue: a 2-node daemon cluster trains across generations while serving,
// /recommend is bit-identical to offline rank.TopN over the same snapshot,
// a rating POSTed before kill -9 survives the crash, and the restarted
// node (-resume) picks up from persisted state and is readmitted by its
// peer's failure detector. Both nodes then drain gracefully and exit 0.
func TestDaemonClusterServeResumeRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs rexd")
	}
	bin := buildRexd(t)
	gossip := freePorts(t, 2)
	web := freePorts(t, 2)
	nodesArg := strings.Join(gossip, ",")
	dirs := []string{t.TempDir(), t.TempDir()}
	args := func(id int) []string {
		return []string{
			"-id", fmt.Sprint(id),
			"-nodes", nodesArg,
			"-http", web[id],
			"-data", dirs[id],
			"-generations", "0", // run until drained
			"-gen-epochs", "2",
			"-seed", "5", "-scale", "0.03", "-steps", "400", "-share", "40",
			"-round-timeout", "750ms", "-peer-grace", "2",
		}
	}
	d0 := startDaemon(t, bin, args(0)...)
	d1 := startDaemon(t, bin, args(1)...)
	dump := func() {
		t.Logf("node 0 output:\n%s", d0.out.String())
		t.Logf("node 1 output:\n%s", d1.out.String())
	}
	defer func() {
		d0.cmd.Process.Kill()
		d1.cmd.Process.Kill()
		if t.Failed() {
			dump()
		}
	}()

	// Both nodes through ≥2 full generations (gen 2 persists at epoch 4;
	// epoch 5 started means that snapshot is on disk).
	for i, addr := range web {
		waitStatus(t, addr, "2 generations", func(st map[string]any) bool {
			return num(st, "epoch") >= 5
		})
		t.Logf("node %d reached epoch 5", i)
	}

	// Serving contract, live: /recommend must be bit-identical to offline
	// rank.TopN over the state /snapshot returns. Training keeps advancing
	// underneath, so retry until both endpoints answer from one epoch.
	verified := false
	for attempt := 0; attempt < 30 && !verified; attempt++ {
		var snap SnapshotHTTP
		if code, err := getJSON(web[0], "/snapshot", &snap); err != nil || code != http.StatusOK {
			t.Fatalf("/snapshot: %d %v", code, err)
		}
		ratings, _, err := dataset.DecodeRatings(snap.Ratings)
		if err != nil {
			t.Fatal(err)
		}
		user := ratings[len(ratings)/2].User
		var rec RecommendHTTP
		if code, err := getJSON(web[0], fmt.Sprintf("/recommend?user=%d&n=10", user), &rec); err != nil || code != http.StatusOK {
			t.Fatalf("/recommend: %d %v", code, err)
		}
		if rec.Epoch != snap.Epoch {
			continue // an epoch boundary slipped between the two reads
		}
		m := mf.New(mf.DefaultConfig())
		if err := m.Unmarshal(snap.Model); err != nil {
			t.Fatal(err)
		}
		want := rank.TopN(m, user, snap.NumItems, 10, rank.SeenSet(ratings, user))
		if len(want) != len(rec.Items) {
			t.Fatalf("user %d: served %d items, offline %d", user, len(rec.Items), len(want))
		}
		for i, it := range want {
			if rec.Items[i].Item != it.ID || rec.Items[i].Score != it.Score {
				t.Fatalf("user %d rank %d: served %+v != offline %+v (epoch %d)",
					user, i, rec.Items[i], it, snap.Epoch)
			}
		}
		verified = true
		t.Logf("/recommend bit-identical to offline TopN at epoch %d (user %d)", snap.Epoch, user)
	}
	if !verified {
		t.Fatal("never caught /snapshot and /recommend on the same epoch")
	}

	// A rating accepted before the crash must survive it: POST to node 1,
	// whose WAL append happens before the 200.
	rated := dataset.Rating{User: 999_999, Item: 3, Value: 4.5}
	resp, err := client.Post("http://"+web[1]+"/rate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"user":%d,"item":%d,"value":%g}`, rated.User, rated.Item, rated.Value)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rate: %d", resp.StatusCode)
	}

	st0 := waitStatus(t, web[0], "baseline", func(map[string]any) bool { return true })
	lostBefore, rejoinsBefore := num(st0, "peers_lost"), num(st0, "rejoins")

	// Crash node 1 hard — no drain, no final snapshot.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()
	killedAt := time.Now()
	waitStatus(t, web[0], "node 0 to drop node 1", func(st map[string]any) bool {
		return num(st, "peers_lost") > lostBefore
	})
	t.Logf("node 0 dropped node 1 %.1fs after kill -9", time.Since(killedAt).Seconds())

	// Restart from persisted state.
	d1b := startDaemon(t, bin, append(args(1), "-resume")...)
	defer func() {
		d1b.cmd.Process.Kill()
		if t.Failed() {
			t.Logf("node 1 (resumed) output:\n%s", d1b.out.String())
		}
	}()
	st1 := waitStatus(t, web[1], "resumed node up", func(st map[string]any) bool {
		return st["resumed"] == true
	})
	resumeEpoch := num(st1, "epoch")
	if resumeEpoch < 4 {
		t.Errorf("resumed at epoch %v, want >= 4 (two persisted generations)", resumeEpoch)
	}
	// It must actually train on, not just restart: epoch advances past the
	// resume point, which requires node 0's gossip to flow again.
	waitStatus(t, web[1], "resumed node to train past its snapshot", func(st map[string]any) bool {
		return num(st, "epoch") > resumeEpoch
	})
	// And node 0's failure detector must have readmitted it.
	waitStatus(t, web[0], "node 0 to rejoin node 1", func(st map[string]any) bool {
		return num(st, "rejoins") > rejoinsBefore
	})
	t.Log("node 1 resumed, trained past its snapshot, and was readmitted by node 0")

	// Durability: the pre-crash rating is in the resumed node's state
	// (snapshot or WAL replay — either way it must be there).
	found := false
	for attempt := 0; attempt < 30 && !found; attempt++ {
		var snap SnapshotHTTP
		if code, err := getJSON(web[1], "/snapshot", &snap); err == nil && code == http.StatusOK {
			ratings, _, err := dataset.DecodeRatings(snap.Ratings)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range ratings {
				if r == rated {
					found = true
					break
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !found {
		t.Fatal("rating POSTed before kill -9 missing after -resume")
	}

	// Graceful drain: both nodes finish their epoch, persist, exit 0.
	drainClient := &http.Client{Timeout: 60 * time.Second}
	for i, addr := range []string{web[0], web[1]} {
		resp, err := drainClient.Post("http://"+addr+"/drain", "application/json", nil)
		if err != nil {
			t.Fatalf("draining node %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("draining node %d: %d", i, resp.StatusCode)
		}
	}
	if err := d0.cmd.Wait(); err != nil {
		t.Fatalf("node 0 exit: %v", err)
	}
	if err := d1b.cmd.Wait(); err != nil {
		t.Fatalf("node 1 exit: %v", err)
	}
	t.Log("both daemons drained and exited 0")
}

// TestShedLeavesNoWALTrace is the admission-control durability contract
// under crash: against a rate-limited daemon, some ratings are acked 200
// (WAL append before the ack) and some shed 429 (turned away before any
// write). After kill -9, the on-disk store must contain every acked
// rating and no shed one, and a -resume restart must serve the acked
// ones from its snapshot.
func TestShedLeavesNoWALTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs rexd")
	}
	bin := buildRexd(t)
	gossip := freePorts(t, 2)
	web := freePorts(t, 2)
	nodesArg := strings.Join(gossip, ",")
	dirs := []string{t.TempDir(), t.TempDir()}
	args := func(id int) []string {
		a := []string{
			"-id", fmt.Sprint(id),
			"-nodes", nodesArg,
			"-http", web[id],
			"-data", dirs[id],
			"-generations", "0",
			"-gen-epochs", "2",
			"-seed", "5", "-scale", "0.03", "-steps", "200", "-share", "40",
			"-round-timeout", "750ms", "-peer-grace", "2",
		}
		if id == 0 {
			// Tiny refill, tiny burst: a rapid burst of posts guarantees
			// both acks and sheds on node 0.
			a = append(a, "-rate-limit", "0.1", "-rate-burst", "3", "-ingest-queue", "16")
		}
		return a
	}
	d0 := startDaemon(t, bin, args(0)...)
	d1 := startDaemon(t, bin, args(1)...)
	defer func() {
		d0.cmd.Process.Kill()
		d1.cmd.Process.Kill()
		if t.Failed() {
			t.Logf("node 0 output:\n%s", d0.out.String())
			t.Logf("node 1 output:\n%s", d1.out.String())
		}
	}()
	waitStatus(t, web[0], "first snapshot", func(st map[string]any) bool {
		return num(st, "epoch") >= 1
	})

	// Burst 20 distinct ratings at node 0: the first ~3 consume the burst
	// tokens (200, WAL-appended), the rest shed 429 before any write.
	type pair struct{ user, item uint32 }
	acked := map[pair]bool{}
	shed := map[pair]bool{}
	for i := 0; i < 20; i++ {
		p := pair{user: 900_000 + uint32(i), item: uint32(i % 5)}
		resp, err := client.Post("http://"+web[0]+"/rate", "application/json",
			strings.NewReader(fmt.Sprintf(`{"user":%d,"item":%d,"value":4}`, p.user, p.item)))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			acked[p] = true
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After (body %v)", body)
			}
			if body["reason"] != "rate_limited" && body["reason"] != "queue_full" {
				t.Fatalf("429 reason %v", body["reason"])
			}
			shed[p] = true
		default:
			t.Fatalf("request %d: unexpected status %d (%v)", i, resp.StatusCode, body)
		}
	}
	if len(acked) == 0 || len(shed) == 0 {
		t.Fatalf("need both outcomes to test the invariant: %d acked, %d shed", len(acked), len(shed))
	}
	t.Logf("%d acked, %d shed", len(acked), len(shed))

	// Crash node 0 hard — whatever is durable is exactly what the WAL and
	// snapshots hold.
	if err := d0.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d0.cmd.Wait()

	dir, err := store.Open(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	snap, replayed, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	dir.Close()
	durable := map[pair]bool{}
	if snap != nil {
		for _, r := range snap.Ratings {
			durable[pair{r.User, r.Item}] = true
		}
	}
	for _, r := range replayed {
		durable[pair{r.User, r.Item}] = true
	}
	for p := range acked {
		if !durable[p] {
			t.Errorf("acked rating %+v missing from the post-crash store", p)
		}
	}
	for p := range shed {
		if durable[p] {
			t.Errorf("shed rating %+v found in the post-crash store — 429 left a WAL trace", p)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	t.Log("post-crash store holds every acked rating and no shed one")

	// Resume and verify the acked ratings reach the served snapshot.
	d0b := startDaemon(t, bin, append(args(0), "-resume")...)
	defer func() {
		d0b.cmd.Process.Kill()
		if t.Failed() {
			t.Logf("node 0 (resumed) output:\n%s", d0b.out.String())
		}
	}()
	waitStatus(t, web[0], "resumed node up", func(st map[string]any) bool {
		return st["resumed"] == true
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		var snapHTTP SnapshotHTTP
		if code, err := getJSON(web[0], "/snapshot", &snapHTTP); err == nil && code == http.StatusOK {
			ratings, _, err := dataset.DecodeRatings(snapHTTP.Ratings)
			if err != nil {
				t.Fatal(err)
			}
			got := map[pair]bool{}
			for _, r := range ratings {
				got[pair{r.User, r.Item}] = true
			}
			missing := 0
			for p := range acked {
				if !got[p] {
					missing++
				}
			}
			for p := range shed {
				if got[p] {
					t.Fatalf("shed rating %+v resurfaced in the resumed snapshot", p)
				}
			}
			if missing == 0 {
				t.Log("resumed snapshot serves every acked rating, zero shed ones")
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed snapshot never caught up with the acked ratings")
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Clean exit for both nodes.
	drainClient := &http.Client{Timeout: 60 * time.Second}
	for i, addr := range web {
		resp, err := drainClient.Post("http://"+addr+"/drain", "application/json", nil)
		if err != nil {
			t.Fatalf("draining node %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("draining node %d: %d", i, resp.StatusCode)
		}
	}
	if err := d0b.cmd.Wait(); err != nil {
		t.Fatalf("node 0 exit: %v", err)
	}
	if err := d1.cmd.Wait(); err != nil {
		t.Fatalf("node 1 exit: %v", err)
	}
}

// SnapshotHTTP mirrors serve.SnapshotResponse (kept local so the test
// exercises the wire format, not shared structs).
type SnapshotHTTP struct {
	Epoch    int     `json:"epoch"`
	NumItems int     `json:"num_items"`
	Model    []byte  `json:"model"`
	Ratings  []byte  `json:"ratings"`
	RMSE     float64 `json:"rmse"`
}

// RecommendHTTP mirrors serve.RecommendResponse.
type RecommendHTTP struct {
	User  uint32 `json:"user"`
	Epoch int    `json:"epoch"`
	Model string `json:"model"`
	Items []struct {
		Item  uint32  `json:"item"`
		Score float32 `json:"score"`
	} `json:"items"`
}
