// Command rexnode runs one live REX node over TCP — the deployment shape
// of the paper's 4-machine SGX cluster (§IV-C). Every node of a cluster is
// started with the same -nodes list and dataset seed; node i trains on the
// i-th partition, attests its neighbors, and gossips encrypted raw data
// (or model parameters with -mode ms).
//
// Example 3-node cluster (three shells):
//
//	rexnode -id 0 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//	rexnode -id 1 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//	rexnode -id 2 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//
// Note: live-mode attestation simulates the SGX hardware root of trust
// in-process (each rexnode manufactures its platform from the shared
// -seed), standing in for the fused keys real hardware provides.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
)

func main() {
	var (
		id      = flag.Int("id", 0, "this node's index into -nodes")
		nodes   = flag.String("nodes", "", "comma-separated host:port of every node, in id order")
		epochs  = flag.Int("epochs", 50, "training epochs")
		modeStr = flag.String("mode", "rex", "sharing mode: rex (raw data) or ms (model parameters)")
		algoStr = flag.String("algo", "dpsgd", "dissemination: dpsgd or rmw")
		secure  = flag.Bool("secure", true, "attest peers and encrypt gossip (REX); false = native plaintext")
		seed    = flag.Int64("seed", 1, "shared dataset/partition seed (must match across the cluster)")
		scale   = flag.Float64("scale", 0.1, "MovieLens-Latest scale factor for the synthetic dataset")
		points  = flag.Int("share", 100, "raw data points shared per epoch")
		steps   = flag.Int("steps", 300, "SGD steps per epoch")
	)
	flag.Parse()

	addrs := strings.Split(*nodes, ",")
	if len(addrs) < 2 {
		log.Fatal("rexnode: -nodes needs at least two addresses")
	}
	if *id < 0 || *id >= len(addrs) {
		log.Fatalf("rexnode: -id %d out of range for %d nodes", *id, len(addrs))
	}
	mode, err := core.ParseMode(*modeStr)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	algo, err := gossip.ParseAlgo(*algoStr)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}

	// Deterministic shared workload: every node generates the same
	// dataset and takes its own partition (Algorithm 1: read_dataset).
	spec := movielens.Latest().Scaled(*scale)
	spec.Seed = *seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(*seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	n := len(addrs)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatalf("rexnode: partitioning: %v", err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatalf("rexnode: partitioning: %v", err)
	}

	mcfg := mf.DefaultConfig()
	node := core.NewNode(core.Config{
		ID: *id, Mode: mode, Algo: algo,
		StepsPerEpoch: *steps, SharePoints: *points, Seed: *seed,
	}, mf.New(mcfg), trainParts[*id], testParts[*id])

	peers := make(map[int]string, n)
	var neighbors []int
	for i, a := range addrs {
		if i == *id {
			continue
		}
		peers[i] = a
		neighbors = append(neighbors, i)
	}
	ep, err := runtime.NewTCPNet(*id, addrs[*id], peers)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	defer ep.Close()

	cfg := runtime.Config{
		Node: node, Endpoint: ep, Neighbors: neighbors, Epochs: *epochs,
		Secure:   *secure,
		NewModel: func() model.Model { return mf.New(mcfg) },
		OnEpoch: func(e int, rmse float64) {
			if e%10 == 0 || e == *epochs-1 {
				log.Printf("node %d epoch %3d: local test RMSE %.4f", *id, e, rmse)
			}
		},
	}
	if *secure {
		// Live-mode attestation: the infrastructure root and per-node
		// platform keys are derived from the shared seed so all cluster
		// members verify against the same collateral — the in-software
		// analogue of hardware-fused provisioning keys.
		inf := attest.NewInfrastructure()
		var platform *attest.Platform
		entropy := rand.New(rand.NewSource(*seed))
		for i := 0; i < n; i++ {
			p, err := inf.NewPlatform(entropy)
			if err != nil {
				log.Fatalf("rexnode: platform: %v", err)
			}
			if i == *id {
				platform = p
			}
		}
		cfg.Platform = platform
		cfg.Infra = inf
		cfg.Measurement = attest.MeasureCode([]byte("rex-enclave-v1"))
		cfg.Entropy = rand.New(rand.NewSource(*seed + int64(*id) + 1000))
	}

	stats, err := runtime.Run(cfg)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	fmt.Printf("node %d done: final RMSE %.4f | merge %v train %v share %v test %v | in %d B out %d B | attested %d\n",
		*id, stats.FinalRMSE, stats.Merge, stats.Train, stats.Share, stats.Test,
		stats.BytesIn, stats.BytesOut, stats.Attested)
}
