// Command rexnode runs live REX nodes over TCP — the deployment shape of
// the paper's 4-machine SGX cluster (§IV-C). It has two modes:
//
// Single-node mode: every node of a cluster is started with the same
// -nodes list and dataset seed; node i trains on the i-th partition,
// attests its neighbors, and gossips encrypted raw data (or model
// parameters with -mode ms).
//
// Example 3-node cluster (three shells):
//
//	rexnode -id 0 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//	rexnode -id 1 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//	rexnode -id 2 -nodes 127.0.0.1:7800,127.0.0.1:7801,127.0.0.1:7802
//
// Sharded mode: -shard i/of runs a whole block of nodes in this process
// (in-proc transport between them) and bridges cross-shard edges over one
// TCP link per shard pair — the paper's two-enclaves-per-platform layout,
// and the way larger meshes run as real multi-process clusters.
//
// Example 8-node cluster as two 4-node processes (two shells):
//
//	rexnode -shard 0/2 -peers 127.0.0.1:7800,127.0.0.1:7801 -n 8
//	rexnode -shard 1/2 -peers 127.0.0.1:7800,127.0.0.1:7801 -n 8
//
// Note: live-mode attestation simulates the SGX hardware root of trust
// in-process (each rexnode manufactures its platform from the shared
// -seed), standing in for the fused keys real hardware provides.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rex/internal/attest"
	"rex/internal/core"
	"rex/internal/dataset"
	"rex/internal/faultnet"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/runtime"
	"rex/internal/topology"
)

type options struct {
	epochs   int
	mode     core.Mode
	algo     gossip.Algo
	secure   bool
	wire     runtime.WireMode
	seed     int64
	scale    float64
	points   int
	steps    int
	scenario *faultnet.Scenario
}

func main() {
	var (
		id       = flag.Int("id", 0, "this node's index into -nodes (single-node mode)")
		nodes    = flag.String("nodes", "", "comma-separated host:port of every node, in id order (single-node mode)")
		shard    = flag.String("shard", "", "i/of: run shard i of a multi-process cluster (with -peers and -n)")
		peers    = flag.String("peers", "", "comma-separated host:port of every shard's bridge, in shard order (sharded mode)")
		nTotal   = flag.Int("n", 0, "total node count across all shards (sharded mode)")
		epochs   = flag.Int("epochs", 50, "training epochs")
		modeStr  = flag.String("mode", "rex", "sharing mode: rex (raw data) or ms (model parameters)")
		algoStr  = flag.String("algo", "dpsgd", "dissemination: dpsgd or rmw")
		secure   = flag.Bool("secure", true, "attest peers and encrypt gossip (REX); false = native plaintext")
		wireStr  = flag.String("wire", "delta", "gossip wire encoding: delta (per-peer delta frames) or full (flat frames)")
		seed     = flag.Int64("seed", 1, "shared dataset/partition seed (must match across the cluster)")
		scale    = flag.Float64("scale", 0.1, "MovieLens-Latest scale factor for the synthetic dataset")
		points   = flag.Int("share", 100, "raw data points shared per epoch")
		steps    = flag.Int("steps", 300, "SGD steps per epoch")
		scenario = flag.String("scenario", "", "chaos scenario: a canned name (see internal/faultnet.Canned) or a JSON spec file — every process of the cluster must pass the same spec")
	)
	flag.Parse()

	mode, err := core.ParseMode(*modeStr)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	algo, err := gossip.ParseAlgo(*algoStr)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	wire, err := runtime.ParseWireMode(*wireStr)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	opts := options{
		epochs: *epochs, mode: mode, algo: algo, secure: *secure, wire: wire,
		seed: *seed, scale: *scale, points: *points, steps: *steps,
	}
	if *scenario != "" {
		sc, err := faultnet.Resolve(*scenario)
		if err != nil {
			log.Fatalf("rexnode: %v", err)
		}
		opts.scenario = sc
		log.Printf("chaos scenario %q (seed %d) active", sc.Name, sc.Seed)
	}
	if *shard != "" {
		runSharded(*shard, *peers, *nTotal, opts)
		return
	}
	runSingle(*id, *nodes, opts)
}

// buildParts generates the deterministic shared workload: every process
// derives the same dataset and partitioning from the seed and takes the
// partitions of the nodes it owns (Algorithm 1: read_dataset).
func buildParts(n int, o options) (train, test [][]dataset.Rating) {
	spec := movielens.Latest().Scaled(o.scale)
	spec.Seed = o.seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(o.seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		log.Fatalf("rexnode: partitioning: %v", err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		log.Fatalf("rexnode: partitioning: %v", err)
	}
	return trainParts, testParts
}

func newNode(i int, o options, mcfg mf.Config, train, test [][]dataset.Rating) *core.Node {
	return core.NewNode(core.Config{
		ID: i, Mode: o.mode, Algo: o.algo,
		StepsPerEpoch: o.steps, SharePoints: o.points, Seed: o.seed,
	}, mf.New(mcfg), train[i], test[i])
}

// collateral derives the attestation infrastructure and one platform per
// node from the shared seed, so every process of the cluster verifies
// against the same collateral — the in-software analogue of
// hardware-fused provisioning keys.
func collateral(n int, seed int64) (*attest.Infrastructure, []*attest.Platform) {
	inf := attest.NewInfrastructure()
	entropy := rand.New(rand.NewSource(seed))
	platforms := make([]*attest.Platform, n)
	for i := 0; i < n; i++ {
		p, err := inf.NewPlatform(entropy)
		if err != nil {
			log.Fatalf("rexnode: platform: %v", err)
		}
		platforms[i] = p
	}
	return inf, platforms
}

func runSingle(id int, nodesList string, o options) {
	addrs := strings.Split(nodesList, ",")
	if len(addrs) < 2 {
		log.Fatal("rexnode: -nodes needs at least two addresses")
	}
	if id < 0 || id >= len(addrs) {
		log.Fatalf("rexnode: -id %d out of range for %d nodes", id, len(addrs))
	}
	n := len(addrs)
	trainParts, testParts := buildParts(n, o)
	mcfg := mf.DefaultConfig()
	node := newNode(id, o, mcfg, trainParts, testParts)

	peers := make(map[int]string, n)
	var neighbors []int
	for i, a := range addrs {
		if i == id {
			continue
		}
		peers[i] = a
		neighbors = append(neighbors, i)
	}
	ep, err := runtime.NewTCPNet(id, addrs[id], peers)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	defer ep.Close()

	cfg := runtime.Config{
		Node: node, Endpoint: ep, Neighbors: neighbors, Epochs: o.epochs,
		Secure:   o.secure,
		Wire:     o.wire,
		NewModel: func() model.Model { return mf.New(mcfg) },
		OnEpoch: func(e int, rmse float64) {
			if e%10 == 0 || e == o.epochs-1 {
				log.Printf("node %d epoch %3d: local test RMSE %.4f", id, e, rmse)
			}
		},
	}
	if o.secure {
		inf, platforms := collateral(n, o.seed)
		cfg.Platform = platforms[id]
		cfg.Infra = inf
		cfg.Measurement = attest.MeasureCode([]byte("rex-enclave-v1"))
		cfg.Entropy = rand.New(rand.NewSource(o.seed + int64(id) + 1000))
	}
	var faultLog faultnet.Log
	if o.scenario != nil {
		o.scenario.ApplyRun(&cfg, &faultLog)
	}

	stats, err := runtime.Run(cfg)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	printStats(id, stats)
}

func runSharded(shardSpec, peersList string, n int, o options) {
	var shard, numShards int
	if _, err := fmt.Sscanf(shardSpec, "%d/%d", &shard, &numShards); err != nil ||
		numShards < 2 || shard < 0 || shard >= numShards {
		log.Fatalf("rexnode: -shard wants i/of with 0 <= i < of and of >= 2, got %q", shardSpec)
	}
	addrs := strings.Split(peersList, ",")
	if len(addrs) != numShards {
		log.Fatalf("rexnode: -peers lists %d bridges for %d shards", len(addrs), numShards)
	}
	if n < numShards {
		log.Fatalf("rexnode: -n %d cannot be split across %d shards", n, numShards)
	}
	trainParts, testParts := buildParts(n, o)
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	lo, hi := runtime.ShardRange(n, numShards, shard)
	for i := lo; i < hi; i++ {
		nodes[i] = newNode(i, o, mcfg, trainParts, testParts)
	}
	shardAddrs := make(map[int]string, numShards)
	for s, a := range addrs {
		shardAddrs[s] = a
	}
	cfg := runtime.ShardConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes,
		Shard: shard, NumShards: numShards,
		ListenAddr: addrs[shard], ShardAddrs: shardAddrs,
		Epochs:   o.epochs,
		Secure:   o.secure,
		Wire:     o.wire,
		NewModel: func() model.Model { return mf.New(mcfg) },
		OnEpoch: func(node, e int, rmse float64) {
			if e%10 == 0 || e == o.epochs-1 {
				log.Printf("shard %d node %d epoch %3d: local test RMSE %.4f", shard, node, e, rmse)
			}
		},
	}
	if o.secure {
		cfg.Infra, cfg.Platforms = collateral(n, o.seed)
	}
	var faultLog faultnet.Log
	if o.scenario != nil {
		o.scenario.ApplyShard(&cfg, &faultLog)
	}
	stats, err := runtime.RunShard(cfg)
	if err != nil {
		log.Fatalf("rexnode: %v", err)
	}
	for i := lo; i < hi; i++ {
		printStats(i, stats[i])
	}
}

func printStats(id int, s *runtime.Stats) {
	saved := s.WireRawBytes - s.BytesOnWire
	if saved < 0 {
		saved = 0
	}
	fmt.Printf("node %d done: final RMSE %.10f | merge %v train %v share %v test %v | seal %v open %v wire %v | in %d B out %d B on-wire %d B | delta saved %d B refs %d explicit %d resyncs %d | attested %d | lost %d rejoined %d | faults dropped %d delayed %d | queue hwm %d\n",
		id, s.FinalRMSE, s.Merge, s.Train, s.Share, s.Test,
		s.Seal, s.Open, s.Wire, s.BytesIn, s.BytesOut, s.BytesOnWire,
		saved, s.DeltaRefs, s.DeltaExplicit, s.Resyncs, s.Attested,
		s.PeersLost, s.Rejoins, s.DroppedFrames, s.DelayedFrames, s.SendQueueHWM)
}
