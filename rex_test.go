package rex_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rex"
)

// buildWorkload prepares a small partitioned dataset through the public
// API only.
func buildWorkload(t testing.TB, nodes int, seed int64) (train, test [][]rex.Rating) {
	t.Helper()
	spec := rex.MovieLensLatest().Scaled(0.06)
	spec.Seed = seed
	ds := rex.GenerateMovieLens(spec)
	tr, te := ds.SplitPerUser(0.7, rand.New(rand.NewSource(seed)))
	trainParts, err := tr.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return trainParts, testParts
}

func TestFacadeSimulateREXvsMS(t *testing.T) {
	const n = 12
	train, test := buildWorkload(t, n, 31)
	g := rex.SmallWorld(n, 4, 0.05, rand.New(rand.NewSource(31)))
	mcfg := rex.DefaultMFConfig()
	run := func(mode rex.Mode) *rex.SimResult {
		res, err := rex.Simulate(rex.SimConfig{
			Graph: g, Algo: rex.DPSGD, Mode: mode,
			Epochs: 40, StepsPerEpoch: 150, SharePoints: 60,
			NewModel: func(int) rex.Model { return rex.NewMF(mcfg) },
			Train:    train, Test: test,
			Compute: rex.MFCompute(mcfg.K), Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ms := run(rex.ModelSharing)
	ds := run(rex.DataSharing)
	if ds.BytesPerNode >= ms.BytesPerNode {
		t.Fatalf("REX moved more bytes than MS: %.0f vs %.0f", ds.BytesPerNode, ms.BytesPerNode)
	}
	if ds.TotalTimeMean >= ms.TotalTimeMean {
		t.Fatalf("REX slower than MS: %.2f vs %.2f", ds.TotalTimeMean, ms.TotalTimeMean)
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	const n = 4
	train, test := buildWorkload(t, n, 33)
	mcfg := rex.DefaultMFConfig()
	nodes := make([]*rex.Node, n)
	for i := range nodes {
		nodes[i] = rex.NewNode(rex.NodeConfig{
			ID: i, Mode: rex.DataSharing, Algo: rex.DPSGD,
			StepsPerEpoch: 80, SharePoints: 20, Seed: 33,
		}, rex.NewMF(mcfg), train[i], test[i])
	}
	stats, err := rex.RunCluster(rex.ClusterConfig{
		Graph: rex.FullyConnected(n), Nodes: nodes, Epochs: 5,
		Secure:   true,
		NewModel: func() rex.Model { return rex.NewMF(mcfg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if s.Attested != n-1 {
			t.Fatalf("node %d attested %d", i, s.Attested)
		}
	}
}

func TestFacadeCentralizedBaseline(t *testing.T) {
	spec := rex.MovieLensLatest().Scaled(0.05)
	spec.Seed = 35
	ds := rex.GenerateMovieLens(spec)
	tr, te := ds.SplitPerUser(0.7, rand.New(rand.NewSource(35)))
	res := rex.Centralized(rex.NewMF(rex.DefaultMFConfig()), tr.Ratings, te.Ratings, 8, len(tr.Ratings), 35)
	if res.FinalRMSE >= res.RMSE[0] {
		t.Fatal("baseline did not improve")
	}
}

func TestFacadeDNN(t *testing.T) {
	cfg := rex.DefaultDNNConfig(20, 50)
	cfg.EmbDim = 4
	cfg.Hidden = []int{8, 6}
	m := rex.NewDNN(cfg)
	if m.ParamCount() <= 0 {
		t.Fatal("empty DNN")
	}
	if p := m.Predict(0, 0); p < -10 || p > 10 {
		t.Fatalf("implausible prediction %v", p)
	}
}

func TestFacadeTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	if g := rex.SmallWorld(40, 6, 0.03, rng); g.N() != 40 {
		t.Fatal("small world size")
	}
	if g := rex.ErdosRenyi(40, 0.1, rng); g.N() != 40 {
		t.Fatal("ER size")
	}
	if g := rex.FullyConnected(8); g.NumEdges() != 28 {
		t.Fatal("complete graph")
	}
}

func TestFacadeStore(t *testing.T) {
	s := rex.NewStore([]rex.Rating{{User: 1, Item: 2, Value: 3}})
	if s.Len() != 1 {
		t.Fatal("store len")
	}
	if added := s.Append([]rex.Rating{{User: 1, Item: 2, Value: 3}}); added != 0 {
		t.Fatal("duplicate added")
	}
}

// ExampleSimulate demonstrates the smallest REX-vs-model-sharing
// comparison via the public API.
func ExampleSimulate() {
	spec := rex.MovieLensLatest().Scaled(0.05)
	spec.Seed = 1
	ds := rex.GenerateMovieLens(spec)
	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(1)))
	const n = 8
	trainParts, _ := train.PartitionUsersAcross(n, rand.New(rand.NewSource(1)))
	testParts, _ := test.PartitionUsersAcross(n, rand.New(rand.NewSource(1)))
	mcfg := rex.DefaultMFConfig()

	res, err := rex.Simulate(rex.SimConfig{
		Graph: rex.FullyConnected(n), Algo: rex.DPSGD, Mode: rex.DataSharing,
		Epochs: 10, StepsPerEpoch: 100, SharePoints: 50,
		NewModel: func(int) rex.Model { return rex.NewMF(mcfg) },
		Train:    trainParts, Test: testParts,
		Compute: rex.MFCompute(mcfg.K), Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("epochs simulated: %d\n", len(res.Series))
	fmt.Printf("improved: %v\n", res.FinalRMSE < res.Series[0].MeanRMSE)
	// Output:
	// epochs simulated: 10
	// improved: true
}
