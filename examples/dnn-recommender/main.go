// dnn-recommender runs the paper's deep-learning scenario (Fig 5): a
// 50-node D-PSGD network training the embedding+MLP recommender of
// §IV-A3b, comparing raw-data sharing against model sharing on both
// small-world and Erdős–Rényi topologies. The DNN's ~200k parameters make
// the model-vs-data wire-size contrast dramatic: one epoch of model
// sharing moves more bytes than an entire REX run.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"rex"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 10, "network size (paper: 50)")
		epochs = flag.Int("epochs", 40, "training epochs (paper: 80)")
		seed   = flag.Int64("seed", 5, "run seed")
		scale  = flag.Float64("scale", 0.12, "dataset scale factor")
		full   = flag.Bool("paper-dnn", false, "use the paper's full architecture (~218k params)")
	)
	flag.Parse()

	spec := rex.MovieLensLatest().Scaled(*scale)
	spec.Seed = *seed
	ds := rex.GenerateMovieLens(spec)
	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(*seed)))
	trainParts, err := train.PartitionUsersAcross(*nodes, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	testParts, err := test.PartitionUsersAcross(*nodes, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}

	dnnCfg := rex.DefaultDNNConfig(ds.NumUsers, ds.NumItems)
	if !*full {
		dnnCfg.EmbDim = 8
		dnnCfg.Hidden = []int{32, 16, 8, 8}
		dnnCfg.BatchSize = 16
		dnnCfg.LearningRate = 1e-3
	}
	probe := rex.NewDNN(dnnCfg)
	mlp := probe.ParamCount() - (ds.NumUsers+ds.NumItems)*dnnCfg.EmbDim
	fmt.Printf("DNN: %d parameters (%d embedding, %d MLP), %d nodes\n\n",
		probe.ParamCount(), (ds.NumUsers+ds.NumItems)*dnnCfg.EmbDim, mlp, *nodes)

	for _, topo := range []string{"SW", "ER"} {
		var g *rex.Graph
		if topo == "SW" {
			g = rex.SmallWorld(*nodes, 6, 0.03, rand.New(rand.NewSource(*seed)))
		} else {
			g = rex.ErdosRenyi(*nodes, 0.05, rand.New(rand.NewSource(*seed)))
		}
		for _, mode := range []rex.Mode{rex.DataSharing, rex.ModelSharing} {
			res, err := rex.Simulate(rex.SimConfig{
				Graph: g, Algo: rex.DPSGD, Mode: mode,
				Epochs: *epochs, StepsPerEpoch: 25, SharePoints: 40, // §IV-A3b: 40 points/epoch
				NewModel: func(int) rex.Model { return rex.NewDNN(dnnCfg) },
				Train:    trainParts, Test: testParts,
				Compute: rex.DNNCompute(mlp, dnnCfg.EmbDim, dnnCfg.BatchSize),
				Seed:    *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			last := res.Series[len(res.Series)-1]
			fmt.Printf("%s %-4v: final RMSE %.4f | epoch stages merge %.4fs train %.4fs share %.4fs | %8.0f B/epoch\n",
				topo, mode, res.FinalRMSE, res.Stage.Merge, res.Stage.Train, res.Stage.Share,
				last.EpochBytesPerNode)
		}
	}
	fmt.Println("\nREX epochs are lighter and its per-epoch traffic is orders of")
	fmt.Println("magnitude smaller; on sparse ER graphs data sharing converges")
	fmt.Println("slightly worse per epoch, exactly the paper's Fig 5(c) caveat.")
}
