// movielens-sim reproduces the paper's flagship scenario (Fig 1/2, Table
// II) at adjustable scale: one node per user — every participant initially
// holds only the ratings they produced — across all four setups
// ({RMW, D-PSGD} x {small world, Erdős–Rényi}), REX versus model sharing,
// with the centralized baseline for reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"rex"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.12, "MovieLens-Latest scale (1.0 = the paper's 610 users)")
		epochs = flag.Int("epochs", 200, "training epochs")
		seed   = flag.Int64("seed", 7, "run seed")
	)
	flag.Parse()

	spec := rex.MovieLensLatest().Scaled(*scale)
	spec.Seed = *seed
	ds := rex.GenerateMovieLens(spec)
	fmt.Printf("dataset: %d ratings, %d users, %d items (one node per user)\n",
		len(ds.Ratings), ds.NumUsers, ds.NumItems)

	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(*seed)))
	trainParts, err := train.PartitionPerUser()
	if err != nil {
		log.Fatal(err)
	}
	testParts, err := test.PartitionPerUser()
	if err != nil {
		log.Fatal(err)
	}
	n := ds.NumUsers

	// Centralized baseline: same model family trained with all data in
	// one place; the error floor of every panel.
	mfCfg := rex.DefaultMFConfig()
	base := rex.Centralized(rex.NewMF(mfCfg), train.Ratings, test.Ratings, 40, len(train.Ratings), *seed)
	fmt.Printf("centralized baseline RMSE: %.4f\n\n", base.FinalRMSE)

	type setup struct {
		name string
		algo rex.Algo
		topo func() *rex.Graph
	}
	setups := []setup{
		{"RMW, SW", rex.RMW, func() *rex.Graph { return rex.SmallWorld(n, 6, 0.03, rand.New(rand.NewSource(*seed))) }},
		{"RMW, ER", rex.RMW, func() *rex.Graph { return rex.ErdosRenyi(n, 0.05, rand.New(rand.NewSource(*seed))) }},
		{"D-PSGD, SW", rex.DPSGD, func() *rex.Graph { return rex.SmallWorld(n, 6, 0.03, rand.New(rand.NewSource(*seed))) }},
		{"D-PSGD, ER", rex.DPSGD, func() *rex.Graph { return rex.ErdosRenyi(n, 0.05, rand.New(rand.NewSource(*seed))) }},
	}

	fmt.Println("setup        scheme  final-RMSE  sim-time   bytes/node")
	for _, s := range setups {
		g := s.topo()
		for _, mode := range []rex.Mode{rex.ModelSharing, rex.DataSharing} {
			res, err := rex.Simulate(rex.SimConfig{
				Graph: g, Algo: s.algo, Mode: mode,
				Epochs: *epochs, StepsPerEpoch: 300, SharePoints: 150,
				NewModel: func(int) rex.Model { return rex.NewMF(mfCfg) },
				Train:    trainParts, Test: testParts,
				Compute: rex.MFCompute(mfCfg.K),
				Seed:    *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-6v  %.4f      %7.1fs  %11.0f\n",
				s.name, mode, res.FinalRMSE, res.TotalTimeMean, res.BytesPerNode)
		}
	}
}
