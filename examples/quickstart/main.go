// Quickstart: the smallest complete REX comparison. Sixteen nodes hold
// disjoint users of a MovieLens-shaped dataset; we run the same network
// twice — once exchanging model parameters (the classical decentralized
// learning baseline) and once exchanging raw ratings (REX) — and print
// how long each needs to reach the same test error, and how many bytes
// each moves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rex"
)

func main() {
	const nodes = 16
	const seed = 42

	// 1. A MovieLens-Latest-shaped dataset at 10% scale, split 70/30 per
	// user, users dealt whole across the nodes.
	spec := rex.MovieLensLatest().Scaled(0.10)
	spec.Seed = seed
	ds := rex.GenerateMovieLens(spec)
	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(seed)))
	trainParts, err := train.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	testParts, err := test.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}

	// 2. A small-world gossip topology (paper §IV-A2a) and the paper's MF
	// hyperparameters (§IV-A3a).
	graph := rex.SmallWorld(nodes, 6, 0.03, rand.New(rand.NewSource(seed)))
	mfCfg := rex.DefaultMFConfig()

	run := func(mode rex.Mode) *rex.SimResult {
		res, err := rex.Simulate(rex.SimConfig{
			Graph: graph, Algo: rex.DPSGD, Mode: mode,
			Epochs: 120, StepsPerEpoch: 300, SharePoints: 100,
			NewModel: func(int) rex.Model { return rex.NewMF(mfCfg) },
			Train:    trainParts, Test: testParts,
			Compute: rex.MFCompute(mfCfg.K),
			Seed:    seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	ms := run(rex.ModelSharing)
	rx := run(rex.DataSharing)

	fmt.Println("scheme          final RMSE   sim time    bytes/node")
	fmt.Printf("model sharing   %.4f       %7.1fs    %8.0f\n", ms.FinalRMSE, ms.TotalTimeMean, ms.BytesPerNode)
	fmt.Printf("REX (raw data)  %.4f       %7.1fs    %8.0f\n", rx.FinalRMSE, rx.TotalTimeMean, rx.BytesPerNode)

	target := ms.FinalRMSE + 0.005
	msT, _ := ms.TimeToRMSE(target)
	rxT, ok := rx.TimeToRMSE(target)
	if ok && rxT > 0 {
		fmt.Printf("\ntime to reach MS's final error (%.3f): MS %.1fs, REX %.1fs — %.1fx speed-up, %.0fx fewer bytes\n",
			target, msT, rxT, msT/rxT, ms.BytesPerNode/rx.BytesPerNode)
	}
}
