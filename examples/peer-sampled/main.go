// peer-sampled bootstraps a REX network without any static topology: a
// gossip-based peer-sampling service (paper §II-B, Jelasity et al.) mixes
// partial views from a minimal ring bootstrap into a random-looking,
// connected, self-healing overlay; REX then trains over a snapshot of that
// overlay. A third of the nodes are killed mid-demo to show the membership
// layer healing around them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rex"
)

func main() {
	const nodes = 40
	const seed = 17

	// 1. Membership: mix partial views for a few rounds.
	ps := rex.NewPeerSampling(nodes, rex.DefaultPeerSamplingConfig(), rand.New(rand.NewSource(seed)))
	for r := 0; r < 20; r++ {
		ps.Step()
	}
	overlay := ps.Snapshot()
	fmt.Printf("overlay after 20 gossip rounds: %v\n", overlay)

	// 2. Workload.
	spec := rex.MovieLensLatest().Scaled(0.1)
	spec.Seed = seed
	ds := rex.GenerateMovieLens(spec)
	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(seed)))
	trainParts, err := train.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	testParts, err := test.PartitionUsersAcross(nodes, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}

	// 3. REX over the sampled overlay.
	mcfg := rex.DefaultMFConfig()
	res, err := rex.Simulate(rex.SimConfig{
		Graph: overlay, Algo: rex.RMW, Mode: rex.DataSharing,
		Epochs: 100, StepsPerEpoch: 300, SharePoints: 100,
		NewModel: func(int) rex.Model { return rex.NewMF(mcfg) },
		Train:    trainParts, Test: testParts,
		Compute: rex.MFCompute(mcfg.K), Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REX over sampled overlay: RMSE %.4f -> %.4f in %.1fs simulated\n",
		res.Series[0].MeanRMSE, res.FinalRMSE, res.TotalTimeMean)

	// 4. Self-healing: kill a third of the nodes and keep gossiping.
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < nodes/3; i++ {
		ps.Kill(rng.Intn(nodes))
	}
	for r := 0; r < 20; r++ {
		ps.Step()
	}
	healed := ps.Snapshot()
	fmt.Printf("after killing %d nodes and 20 more rounds: %d live nodes, overlay %v\n",
		nodes-len(ps.LiveNodes()), len(ps.LiveNodes()), healed)
	fmt.Println("the membership layer heals itself; a production REX would re-run")
	fmt.Println("attestation with any newly sampled neighbor before exchanging data.")
}
