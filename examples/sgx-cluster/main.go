// sgx-cluster runs a *live* 8-node fully connected REX deployment in one
// process — the paper's §IV-C experiment shape: two enclaves per platform,
// mutual attestation between all 28 pairs before any data moves, AES-GCM
// sealed raw-data gossip, and a comparison against the unprotected
// "native" build of the same code.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rex"
)

func main() {
	var (
		epochs = flag.Int("epochs", 40, "training epochs")
		seed   = flag.Int64("seed", 9, "run seed")
		scale  = flag.Float64("scale", 0.1, "dataset scale factor")
	)
	flag.Parse()

	const nodes = 8
	spec := rex.MovieLensLatest().Scaled(*scale)
	spec.Seed = *seed
	ds := rex.GenerateMovieLens(spec)
	train, test := ds.SplitPerUser(0.7, rand.New(rand.NewSource(*seed)))
	trainParts, err := train.PartitionUsersAcross(nodes, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	testParts, err := test.PartitionUsersAcross(nodes, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	graph := rex.FullyConnected(nodes)
	mfCfg := rex.DefaultMFConfig()

	build := func(mode rex.Mode) []*rex.Node {
		out := make([]*rex.Node, nodes)
		for i := range out {
			out[i] = rex.NewNode(rex.NodeConfig{
				ID: i, Mode: mode, Algo: rex.DPSGD,
				StepsPerEpoch: 300, SharePoints: 100, Seed: *seed,
			}, rex.NewMF(mfCfg), trainParts[i], testParts[i])
		}
		return out
	}

	run := func(name string, mode rex.Mode, secure bool) {
		start := time.Now()
		stats, err := rex.RunCluster(rex.ClusterConfig{
			Graph: graph, Nodes: build(mode), Epochs: *epochs,
			Secure:           secure,
			NodesPerPlatform: 2, // paper: 2 processes per SGX machine
			NewModel:         func() rex.Model { return rex.NewMF(mfCfg) },
		})
		if err != nil {
			log.Fatal(err)
		}
		var rmse float64
		var in, out int64
		var attested int
		var seal, open time.Duration
		for _, s := range stats {
			rmse += s.FinalRMSE / float64(len(stats))
			in += s.BytesIn
			out += s.BytesOut
			attested += s.Attested
			seal += s.Seal
			open += s.Open
		}
		fmt.Printf("%-22s mean RMSE %.4f | wall %7v | traffic in+out %9d B | attestations %2d | crypto seal %v open %v\n",
			name, rmse, time.Since(start).Round(time.Millisecond), in+out, attested/2, seal.Round(time.Microsecond), open.Round(time.Microsecond))
	}

	fmt.Printf("live 8-node fully connected cluster, %d epochs, D-PSGD\n\n", *epochs)
	run("REX (attested, AES-GCM)", rex.DataSharing, true)
	run("native, data sharing", rex.DataSharing, false)
	run("secure model sharing", rex.ModelSharing, true)
	run("native model sharing", rex.ModelSharing, false)
	fmt.Println("\nraw-data payloads are two orders of magnitude smaller than models;")
	fmt.Println("encryption+attestation add little — the paper's Fig 6 story, live.")
}
