// Benchmarks regenerating every table and figure of the paper's evaluation
// (scaled-down workloads; `go run ./cmd/rexbench -exp <id> -full` runs
// paper scale), plus ablations of the design choices DESIGN.md calls out.
package rex

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"rex/internal/core"
	"rex/internal/experiments"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/sim"
	"rex/internal/topology"
)

// benchExperiment runs one paper artifact per iteration. The first
// iteration executes the scenario; later iterations may hit the package's
// memo cache, so b.N>1 timings measure the harness, not the simulation —
// artifact regeneration, not throughput, is the point of these benches.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Params{Seed: 1, Out: io.Discard}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// --- ablation benches: the design choices DESIGN.md §5 calls out ---

// ablationWorkload builds a small REX-ready network shared by ablations.
func ablationWorkload(b *testing.B, seed int64) (sim.Config, int) {
	b.Helper()
	spec := movielens.Latest().Scaled(0.08)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	const n = 20
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	cfg := sim.Config{
		Graph: topology.SmallWorld(n, 6, 0.03, rand.New(rand.NewSource(seed))),
		Algo:  gossip.DPSGD, Mode: core.DataSharing,
		Epochs: 50, StepsPerEpoch: 200, SharePoints: 80,
		NewModel: func(int) model.Model { return mf.New(mcfg) },
		Train:    trainParts, Test: testParts,
		Compute: sim.MFCompute(mcfg.K), Seed: seed,
	}
	return cfg, n
}

// BenchmarkAblationMergeWeights compares D-PSGD model merging with
// Metropolis–Hastings weights (the paper's §III-C2 choice) against naive
// uniform averaging on an irregular graph.
func BenchmarkAblationMergeWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := ablationWorkload(b, 7)
		cfg.Mode = core.ModelSharing
		mh, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg2, _ := ablationWorkload(b, 7)
		cfg2.Mode = core.ModelSharing
		cfg2.UniformMerge = true
		uni, err := sim.Run(cfg2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mh.FinalRMSE, "rmse-MH")
		b.ReportMetric(uni.FinalRMSE, "rmse-uniform")
	}
}

// BenchmarkAblationFixedSteps contrasts the paper's fixed SGD budget per
// epoch (§III-E) with naive full-pass epochs whose duration grows with the
// raw-data store.
func BenchmarkAblationFixedSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixedCfg, _ := ablationWorkload(b, 11)
		fixed, err := sim.Run(fixedCfg)
		if err != nil {
			b.Fatal(err)
		}
		fullCfg, _ := ablationWorkload(b, 11)
		fullCfg.StepsPerEpoch = 0 // full pass
		full, err := sim.Run(fullCfg)
		if err != nil {
			b.Fatal(err)
		}
		// Fixed steps: constant epoch duration. Full pass: last epochs are
		// much slower than the first because the store has grown.
		fFirst := fixed.Series[1].Stage.Train
		fLast := fixed.Series[len(fixed.Series)-1].Stage.Train
		gFirst := full.Series[1].Stage.Train
		gLast := full.Series[len(full.Series)-1].Stage.Train
		b.ReportMetric(fLast/fFirst, "fixed-growth")
		b.ReportMetric(gLast/gFirst, "fullpass-growth")
	}
}

// BenchmarkAblationShareParallel measures the §III-D "future work"
// optimization: overlapping raw-data sharing with training.
func BenchmarkAblationShareParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seqCfg, _ := ablationWorkload(b, 13)
		seq, err := sim.Run(seqCfg)
		if err != nil {
			b.Fatal(err)
		}
		parCfg, _ := ablationWorkload(b, 13)
		parCfg.ShareParallel = true
		par, err := sim.Run(parCfg)
		if err != nil {
			b.Fatal(err)
		}
		if par.TotalTimeMean > seq.TotalTimeMean {
			b.Fatalf("parallel share slower: %v > %v", par.TotalTimeMean, seq.TotalTimeMean)
		}
		b.ReportMetric(seq.TotalTimeMean/par.TotalTimeMean, "speedup")
	}
}

// BenchmarkAblationStatelessSampling quantifies the duplicate rate of the
// paper's stateless raw-data sampling (§III-E): nodes may resend points,
// and the receiver's dedup absorbs them.
func BenchmarkAblationStatelessSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := ablationWorkload(b, 17)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- microbenchmarks of the hot paths ---

func BenchmarkMFTrainStep(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	m := mf.New(mf.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	m.Train(ds.Ratings, b.N, rng)
}

func BenchmarkMFMerge(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(1))
	a := mf.New(mf.DefaultConfig())
	a.Train(ds.Ratings, 5000, rng)
	c := mf.New(mf.DefaultConfig())
	c.Train(ds.Ratings, 5000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MergeWeighted(0.5, []model.Weighted{{M: c, W: 0.5}})
	}
}

func BenchmarkMFMarshal(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	m := mf.New(mf.DefaultConfig())
	m.Train(ds.Ratings, 5000, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreSample(b *testing.B) {
	spec := movielens.Latest().Scaled(0.1)
	ds := movielens.Generate(spec)
	st := NewStore(ds.Ratings)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sample(300, rng)
	}
}

func BenchmarkGraphSmallWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		g := topology.SmallWorld(610, 6, 0.03, rng)
		if !topology.IsConnected(g) {
			b.Fatal("disconnected small world")
		}
	}
}

// Example-style smoke check keeping the facade honest.
func BenchmarkFacadeSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := MovieLensLatest().Scaled(0.05)
		spec.Seed = 3
		ds := GenerateMovieLens(spec)
		rng := rand.New(rand.NewSource(3))
		tr, te := ds.SplitPerUser(0.7, rng)
		const n = 12
		trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		mcfg := DefaultMFConfig()
		res, err := Simulate(SimConfig{
			Graph: FullyConnected(n), Algo: DPSGD, Mode: DataSharing,
			Epochs: 20, StepsPerEpoch: 100, SharePoints: 50,
			NewModel: func(int) Model { return NewMF(mcfg) },
			Train:    trainParts, Test: testParts,
			Compute: MFCompute(mcfg.K), Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalRMSE <= 0 {
			b.Fatal("no RMSE")
		}
	}
	if b.N > 0 {
		fmt.Fprint(io.Discard, "ok")
	}
}

// --- extension experiments (paper §IV-E discussion + future work) ---

func BenchmarkExtNonIID(b *testing.B)      { benchExperiment(b, "ext-noniid") }
func BenchmarkExtChurn(b *testing.B)       { benchExperiment(b, "ext-churn") }
func BenchmarkExtPoison(b *testing.B)      { benchExperiment(b, "ext-poison") }
func BenchmarkExtCompression(b *testing.B) { benchExperiment(b, "ext-compression") }
func BenchmarkExtKNN(b *testing.B)         { benchExperiment(b, "ext-knn") }

func BenchmarkExtDynamic(b *testing.B) { benchExperiment(b, "ext-dynamic") }
