// Benchmarks regenerating every table and figure of the paper's evaluation
// (scaled-down workloads; `go run ./cmd/rexbench -exp <id> -full` runs
// paper scale), plus ablations of the design choices DESIGN.md calls out.
package rex

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/experiments"
	"rex/internal/gossip"
	"rex/internal/mf"
	"rex/internal/model"
	"rex/internal/movielens"
	"rex/internal/nn"
	"rex/internal/runtime"
	"rex/internal/sim"
	"rex/internal/topology"
)

// benchExperiment runs one paper artifact per iteration. The first
// iteration executes the scenario; later iterations may hit the package's
// memo cache, so b.N>1 timings measure the harness, not the simulation —
// artifact regeneration, not throughput, is the point of these benches.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Params{Seed: 1, Out: io.Discard}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// --- ablation benches: the design choices DESIGN.md §5 calls out ---

// ablationWorkload builds a small REX-ready network shared by ablations.
func ablationWorkload(b *testing.B, seed int64) (sim.Config, int) {
	b.Helper()
	spec := movielens.Latest().Scaled(0.08)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	const n = 20
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	cfg := sim.Config{
		Graph: topology.SmallWorld(n, 6, 0.03, rand.New(rand.NewSource(seed))),
		Algo:  gossip.DPSGD, Mode: core.DataSharing,
		Epochs: 50, StepsPerEpoch: 200, SharePoints: 80,
		NewModel: func(int) model.Model { return mf.New(mcfg) },
		Train:    trainParts, Test: testParts,
		Compute: sim.MFCompute(mcfg.K), Seed: seed,
	}
	return cfg, n
}

// BenchmarkAblationMergeWeights compares D-PSGD model merging with
// Metropolis–Hastings weights (the paper's §III-C2 choice) against naive
// uniform averaging on an irregular graph.
func BenchmarkAblationMergeWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := ablationWorkload(b, 7)
		cfg.Mode = core.ModelSharing
		mh, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg2, _ := ablationWorkload(b, 7)
		cfg2.Mode = core.ModelSharing
		cfg2.UniformMerge = true
		uni, err := sim.Run(cfg2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mh.FinalRMSE, "rmse-MH")
		b.ReportMetric(uni.FinalRMSE, "rmse-uniform")
	}
}

// BenchmarkAblationFixedSteps contrasts the paper's fixed SGD budget per
// epoch (§III-E) with naive full-pass epochs whose duration grows with the
// raw-data store.
func BenchmarkAblationFixedSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixedCfg, _ := ablationWorkload(b, 11)
		fixed, err := sim.Run(fixedCfg)
		if err != nil {
			b.Fatal(err)
		}
		fullCfg, _ := ablationWorkload(b, 11)
		fullCfg.StepsPerEpoch = 0 // full pass
		full, err := sim.Run(fullCfg)
		if err != nil {
			b.Fatal(err)
		}
		// Fixed steps: constant epoch duration. Full pass: last epochs are
		// much slower than the first because the store has grown.
		fFirst := fixed.Series[1].Stage.Train
		fLast := fixed.Series[len(fixed.Series)-1].Stage.Train
		gFirst := full.Series[1].Stage.Train
		gLast := full.Series[len(full.Series)-1].Stage.Train
		b.ReportMetric(fLast/fFirst, "fixed-growth")
		b.ReportMetric(gLast/gFirst, "fullpass-growth")
	}
}

// BenchmarkAblationShareParallel measures the §III-D "future work"
// optimization: overlapping raw-data sharing with training.
func BenchmarkAblationShareParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seqCfg, _ := ablationWorkload(b, 13)
		seq, err := sim.Run(seqCfg)
		if err != nil {
			b.Fatal(err)
		}
		parCfg, _ := ablationWorkload(b, 13)
		parCfg.ShareParallel = true
		par, err := sim.Run(parCfg)
		if err != nil {
			b.Fatal(err)
		}
		if par.TotalTimeMean > seq.TotalTimeMean {
			b.Fatalf("parallel share slower: %v > %v", par.TotalTimeMean, seq.TotalTimeMean)
		}
		b.ReportMetric(seq.TotalTimeMean/par.TotalTimeMean, "speedup")
	}
}

// BenchmarkAblationStatelessSampling quantifies the duplicate rate of the
// paper's stateless raw-data sampling (§III-E): nodes may resend points,
// and the receiver's dedup absorbs them.
func BenchmarkAblationStatelessSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := ablationWorkload(b, 17)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- microbenchmarks of the hot paths (the README kernel table) ---

// BenchmarkMFTrain measures one SGD step of the MF hot path (b.N steps of
// uniform sampling + the fused vec kernel).
func BenchmarkMFTrain(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	m := mf.New(mf.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	m.Train(ds.Ratings, b.N, rng)
}

func BenchmarkMFMerge(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(1))
	a := mf.New(mf.DefaultConfig())
	a.Train(ds.Ratings, 5000, rng)
	c := mf.New(mf.DefaultConfig())
	c.Train(ds.Ratings, 5000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MergeWeighted(0.5, []model.Weighted{{M: c, W: 0.5}})
	}
}

// BenchmarkMFMarshal measures the steady-state share-path serialization: a
// node re-serializes its model every epoch, so the buffer is reused via
// MarshalAppend (zero allocations per op). BenchmarkMFMarshalAlloc keeps
// the old fresh-allocation measurement for comparison.
func BenchmarkMFMarshal(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	m := mf.New(mf.DefaultConfig())
	m.Train(ds.Ratings, 5000, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.MarshalAppend(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMFMarshalAlloc(b *testing.B) {
	spec := movielens.Latest().Scaled(0.05)
	ds := movielens.Generate(spec)
	m := mf.New(mf.DefaultConfig())
	m.Train(ds.Ratings, 5000, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNForward measures the DNN eval path: one batched forward pass
// over 256 examples per op via PredictBatch (the test-stage workload).
func BenchmarkNNForward(b *testing.B) {
	const users, items = 610, 9000
	cfg := nn.DefaultConfig(users, items)
	net := nn.NewNet(cfg)
	rng := rand.New(rand.NewSource(2))
	const batch = 256
	us := make([]uint32, batch)
	is := make([]uint32, batch)
	out := make([]float32, batch)
	for i := range us {
		us[i] = uint32(rng.Intn(users))
		is[i] = uint32(rng.Intn(items))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.PredictBatch(us, is, out)
	}
}

// BenchmarkNNForwardSingle is the pre-batching shape of the same workload
// — 256 one-example forward passes — kept as the comparison point for the
// batched path above.
func BenchmarkNNForwardSingle(b *testing.B) {
	const users, items = 610, 9000
	cfg := nn.DefaultConfig(users, items)
	net := nn.NewNet(cfg)
	rng := rand.New(rand.NewSource(2))
	const batch = 256
	us := make([]uint32, batch)
	is := make([]uint32, batch)
	for i := range us {
		us[i] = uint32(rng.Intn(users))
		is[i] = uint32(rng.Intn(items))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			net.Predict(us[j], is[j])
		}
	}
}

func BenchmarkStoreSample(b *testing.B) {
	spec := movielens.Latest().Scaled(0.1)
	ds := movielens.Generate(spec)
	st := NewStore(ds.Ratings)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sample(300, rng)
	}
}

func BenchmarkGraphSmallWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		g := topology.SmallWorld(610, 6, 0.03, rng)
		if !topology.IsConnected(g) {
			b.Fatal("disconnected small world")
		}
	}
}

// Example-style smoke check keeping the facade honest.
func BenchmarkFacadeSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := MovieLensLatest().Scaled(0.05)
		spec.Seed = 3
		ds := GenerateMovieLens(spec)
		rng := rand.New(rand.NewSource(3))
		tr, te := ds.SplitPerUser(0.7, rng)
		const n = 12
		trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		mcfg := DefaultMFConfig()
		res, err := Simulate(SimConfig{
			Graph: FullyConnected(n), Algo: DPSGD, Mode: DataSharing,
			Epochs: 20, StepsPerEpoch: 100, SharePoints: 50,
			NewModel: func(int) Model { return NewMF(mcfg) },
			Train:    trainParts, Test: testParts,
			Compute: MFCompute(mcfg.K), Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalRMSE <= 0 {
			b.Fatal("no RMSE")
		}
	}
	if b.N > 0 {
		fmt.Fprint(io.Discard, "ok")
	}
}

// --- extension experiments (paper §IV-E discussion + future work) ---

func BenchmarkExtNonIID(b *testing.B)      { benchExperiment(b, "ext-noniid") }
func BenchmarkExtChurn(b *testing.B)       { benchExperiment(b, "ext-churn") }
func BenchmarkExtPoison(b *testing.B)      { benchExperiment(b, "ext-poison") }
func BenchmarkExtCompression(b *testing.B) { benchExperiment(b, "ext-compression") }
func BenchmarkExtKNN(b *testing.B)         { benchExperiment(b, "ext-knn") }

func BenchmarkExtDynamic(b *testing.B) { benchExperiment(b, "ext-dynamic") }

// --- parallel engine benches: sequential-vs-parallel equivalence and
// wall-clock speedup of the worker pool (sim.Config.Workers) ---

// parallelWorkload is the acceptance workload for the parallel engine: a
// 64-node small-world graph running 50 epochs of D-PSGD data sharing.
func parallelWorkload(b *testing.B, workers int) sim.Config {
	b.Helper()
	const seed = 21
	spec := movielens.Latest().Scaled(0.15)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	const n = 64
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	return sim.Config{
		Graph: topology.SmallWorld(n, 6, 0.03, rand.New(rand.NewSource(seed))),
		Algo:  gossip.DPSGD, Mode: core.DataSharing,
		Epochs: 50, StepsPerEpoch: 300, SharePoints: 100,
		Workers:  workers,
		NewModel: func(int) model.Model { return mf.New(mcfg) },
		Train:    trainParts, Test: testParts,
		Compute: sim.MFCompute(mcfg.K), Seed: seed,
	}
}

// BenchmarkSimWorkers measures the wall-clock effect of the worker pool on
// the 64-node / 50-epoch D-PSGD workload; compare the workers=1 and
// workers=N per-op times for the speedup. Workload construction happens
// outside the timed region so only sim.Run is measured (Run never mutates
// the shared Train/Test partitions or the graph, so one Config serves all
// iterations).
func BenchmarkSimWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			cfg := parallelWorkload(b, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- live runtime benches: cluster epoch wall-clock and TCP share fan-out ---

// liveClusterConfig builds a fresh 8-node fully connected live-cluster
// workload (degree 7, D-PSGD raw-data sharing). Training is deliberately
// light (50 SGD steps) and sharing heavy (400 points/epoch) so the bench
// weights the runtime's crypto/codec/transport path, not the MF kernel.
func liveClusterConfig(b *testing.B, secure bool, wire runtime.WireMode, epochs int) runtime.ClusterConfig {
	b.Helper()
	const seed = 33
	const n = 8
	spec := movielens.Latest().Scaled(0.05)
	spec.Seed = seed
	ds := movielens.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	tr, te := ds.SplitPerUser(0.7, rng)
	trainParts, err := tr.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	testParts, err := te.PartitionUsersAcross(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	mcfg := mf.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = core.NewNode(core.Config{
			ID: i, Mode: core.DataSharing, Algo: gossip.DPSGD,
			StepsPerEpoch: 50, SharePoints: 400, Seed: seed,
		}, mf.New(mcfg), trainParts[i], testParts[i])
	}
	return runtime.ClusterConfig{
		Graph: topology.FullyConnected(n), Nodes: nodes, Epochs: epochs,
		Secure: secure, Wire: wire,
		NewModel: func() model.Model { return mf.New(mcfg) },
	}
}

// BenchmarkClusterEpoch measures the live in-proc cluster (8 nodes, full
// mesh, D-PSGD data sharing) with REX protections on and off. One op is a
// whole cluster run; the ms/epoch metric divides out the epoch count
// (secure ops also pay the one-time 28-pair attestation). The bare
// native/secure names run the default delta wire — those are the headline
// numbers — and the -fullwire variants re-run the identical workload on
// flat frames so the wireB/epoch ratio between the two is the delta
// encoder's measured saving (gated by cmd/benchgate -wire).
func BenchmarkClusterEpoch(b *testing.B) {
	const epochs = 6
	for _, bc := range []struct {
		name   string
		secure bool
		wire   runtime.WireMode
	}{
		{"native", false, runtime.WireDelta},
		{"secure", true, runtime.WireDelta},
		{"native-fullwire", false, runtime.WireFull},
		{"secure-fullwire", true, runtime.WireFull},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var wire int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := liveClusterConfig(b, bc.secure, bc.wire, epochs)
				b.StartTimer()
				stats, err := runtime.RunCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range stats {
					wire += s.BytesOnWire
				}
			}
			b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N*epochs), "ms/epoch")
			// Total cluster bytes handed to the transport per epoch: frame
			// payloads + kind framing + (secure) attestation handshakes —
			// the secure-vs-native wire overhead in one number.
			b.ReportMetric(float64(wire)/float64(b.N*epochs), "wireB/epoch")
		})
	}
}

// BenchmarkTCPShareRound measures a D-PSGD share fan-out over the real TCP
// transport: one op sends a sealed-payload-sized frame to 4 peers and
// waits until all 4 have delivered it to their inbox.
func BenchmarkTCPShareRound(b *testing.B) {
	const peers = 4
	hubPeers := map[int]string{}
	recvs := make([]*runtime.TCPNet, peers)
	acks := make(chan struct{}, 64)
	for p := 0; p < peers; p++ {
		tn, err := runtime.NewTCPNet(p+1, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer tn.Close()
		recvs[p] = tn
		hubPeers[p+1] = tn.Addr().String()
		go func(tn *runtime.TCPNet) {
			for range tn.Inbox() {
				acks <- struct{}{}
			}
		}(tn)
	}
	hub, err := runtime.NewTCPNet(0, "127.0.0.1:0", hubPeers)
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()

	frame := make([]byte, 16<<10) // ~ a sealed 1.3k-point REX payload
	b.SetBytes(int64(peers * len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 1; p <= peers; p++ {
			if err := hub.Send(p, frame); err != nil {
				b.Fatal(err)
			}
		}
		for p := 0; p < peers; p++ {
			<-acks
		}
	}
}

// BenchmarkWireBatch measures the TCP lane's frame coalescing: one op
// bursts a 16-frame wave (the lane batch cap) at a single peer and waits
// for all deliveries. Because the sends enqueue far faster than the lane
// drains, the writer coalesces the queue into vectored writes — compare
// MB/s here against BenchmarkTCPShareRound's one-frame-per-write path.
func BenchmarkWireBatch(b *testing.B) {
	const burst = 16
	recv, err := runtime.NewTCPNet(1, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	acks := make(chan struct{}, 2*burst)
	go func() {
		for range recv.Inbox() {
			acks <- struct{}{}
		}
	}()
	hub, err := runtime.NewTCPNet(0, "127.0.0.1:0", map[int]string{1: recv.Addr().String()})
	if err != nil {
		b.Fatal(err)
	}
	defer hub.Close()

	frame := make([]byte, 4<<10) // ~ a delta share frame after packing
	b.SetBytes(int64(burst * len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := 0; f < burst; f++ {
			if err := hub.Send(1, frame); err != nil {
				b.Fatal(err)
			}
		}
		for f := 0; f < burst; f++ {
			<-acks
		}
	}
}

// resultsIdentical compares two runs bit-for-bit: every series row and the
// aggregate metrics, with NaN equal to NaN (TestEvery-skipped epochs).
func resultsIdentical(a, b *sim.Result) bool {
	f64eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	stEq := func(x, y sim.StageTimes) bool {
		return f64eq(x.Merge, y.Merge) && f64eq(x.Train, y.Train) &&
			f64eq(x.Share, y.Share) && f64eq(x.Test, y.Test)
	}
	if len(a.Series) != len(b.Series) {
		return false
	}
	for i := range a.Series {
		x, y := a.Series[i], b.Series[i]
		if x.Epoch != y.Epoch || !f64eq(x.MeanRMSE, y.MeanRMSE) ||
			!f64eq(x.TimeMean, y.TimeMean) || !f64eq(x.TimeMax, y.TimeMax) ||
			!f64eq(x.BytesPerNode, y.BytesPerNode) ||
			!f64eq(x.EpochBytesPerNode, y.EpochBytesPerNode) || !stEq(x.Stage, y.Stage) {
			return false
		}
	}
	return f64eq(a.FinalRMSE, b.FinalRMSE) && f64eq(a.TotalTimeMean, b.TotalTimeMean) &&
		f64eq(a.TotalTimeMax, b.TotalTimeMax) && f64eq(a.BytesPerNode, b.BytesPerNode) &&
		stEq(a.Stage, b.Stage) && a.PeakHeapBytes == b.PeakHeapBytes &&
		f64eq(a.MeanHeapBytes, b.MeanHeapBytes) && a.FailedNodes == b.FailedNodes
}

// BenchmarkSimParallelEquivalence runs the workload sequentially and on 4
// workers each iteration, fails unless the results agree bit-for-bit, and
// reports the speedup — the engine's correctness contract as a benchmark.
// Only the sim.Run calls are timed.
func BenchmarkSimParallelEquivalence(b *testing.B) {
	seqCfg := parallelWorkload(b, 1)
	parCfg := parallelWorkload(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seq, err := sim.Run(seqCfg)
		if err != nil {
			b.Fatal(err)
		}
		tSeq := time.Since(t0)
		t0 = time.Now()
		par, err := sim.Run(parCfg)
		if err != nil {
			b.Fatal(err)
		}
		tPar := time.Since(t0)
		if !resultsIdentical(seq, par) {
			b.Fatalf("parallel run diverged from sequential: %+v vs %+v", seq, par)
		}
		b.ReportMetric(tSeq.Seconds()/tPar.Seconds(), "speedup-4w")
	}
}
